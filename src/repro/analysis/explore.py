"""Bounded match-set exploration of wildcard nondeterminism.

`repro.analysis.seqmatch` replays the *one* deterministic schedule a
wildcard-free program has. With ``MPI_ANY_SOURCE`` in play there is a
set of feasible matchings (the paper's Fig. 10 stress case is built
on exactly this), and a deadlock may hide in only some of them. This
module enumerates that set as an explicit state graph over the
extracted per-rank sequences (:mod:`repro.analysis.extract`) and
classifies the program:

* ``deadlock-free`` — no reachable terminal state has a blocked rank;
* ``deadlock-possible`` — some schedule + wildcard choice deadlocks;
  the verdict carries a replayable :class:`WitnessSchedule`;
* ``bound-exceeded`` — the graph was cut off by ``max_states`` /
  ``max_depth`` before either claim could be proved. This is *not*
  ``deadlock-free``.

Fidelity contract
-----------------
The transition semantics mirror the virtual runtime
(:mod:`repro.runtime.engine` + :mod:`repro.runtime.matchstate`) under
the paper's strict blocking predicate ``b``, so every witness replays:

* matching is *eager*: a send arriving at a destination with a
  compatible posted receive pairs immediately (earliest receive in
  post order), and a receive finding compatible messages always takes
  one (per-sender earliest — MPI's non-overtaking rule);
* the **only** nondeterministic matching decision is which sender a
  wildcard receive takes when several senders have messages queued —
  that choice, times the scheduler interleaving, is the branch
  structure of the state graph;
* completions are deterministic: ``MPI_Waitany`` consumes the
  lowest-index done request at execution and exactly the waking
  request when parked (one request completes per match event).

States are memoized by a compact hashable key — program counters,
parked flags, unmatched messages, unposted receives, and consumed
request sets; request done-ness and collective wave arrivals are
derivable and deliberately not stored. Every transition strictly
increases ``sum(2*pc + parked)``, so the graph is acyclic and the
visited-set prune is sound for deadlock reachability.

Partial-order reduction: when some rank has a single enabled
transition that is *safe* — commutes with every other enabled
transition and cannot change any future wildcard candidate set — only
that transition is explored (a singleton ample set). This collapses
the Fig. 10 wildcard storm from exponential to near-linear while
preserving every reachable deadlock.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.extract import Extraction
from repro.analysis.witness import WitnessSchedule
from repro.core.waitfor import WaitForCondition, WaitTarget, intern_target
from repro.mpi.communicator import CommRegistry
from repro.mpi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    PROC_NULL,
    OpKind,
    is_collective_kind,
    is_completion_kind,
    is_recv_kind,
    is_send_kind,
)
from repro.mpi.ops import Operation, OpRef
from repro.obs.metrics import MetricsRegistry
from repro.util.errors import ReproError
from repro.wfg.detect import DetectionResult, detect_deadlock
from repro.wfg.graph import WaitForGraph

DEFAULT_MAX_STATES = 200_000
DEFAULT_MAX_DEPTH = 1_000_000

#: Send calls/requests that complete at post time (no rendezvous).
_BUFFERED_SEND_KINDS = frozenset(
    {OpKind.BSEND, OpKind.RSEND, OpKind.IBSEND, OpKind.IRSEND}
)
#: Blocking send calls that park until matched under strict ``b``.
_RENDEZVOUS_BLOCKING_SENDS = frozenset({OpKind.SEND, OpKind.SSEND})
#: Ops with purely rank-local effect.
_LOCAL_KINDS = frozenset(
    {
        OpKind.SEND_INIT,
        OpKind.RECV_INIT,
        OpKind.REQUEST_FREE,
        OpKind.IPROBE,
        OpKind.SENDRECV_MARKER,
    }
)
_WAIT_PARK_KINDS = frozenset(
    {OpKind.WAIT, OpKind.WAITALL, OpKind.WAITANY, OpKind.WAITSOME}
)
#: Nonblocking p2p kinds that register a completable request.
_REQUEST_CREATOR_KINDS = frozenset(
    {
        OpKind.ISEND,
        OpKind.ISSEND,
        OpKind.IBSEND,
        OpKind.IRSEND,
        OpKind.IRECV,
        OpKind.PSTART_SEND,
        OpKind.PSTART_RECV,
    }
)


class ExplorationUnsupported(ReproError):
    """The program uses a construct the explorer cannot model soundly
    (or one the engine itself would reject as an MPI usage error)."""


class Verdict(Enum):
    """Classification of one program set by the explorer."""

    DEADLOCK_FREE = "deadlock-free"
    DEADLOCK_POSSIBLE = "deadlock-possible"
    BOUND_EXCEEDED = "bound-exceeded"


@dataclass
class ExploreStats:
    """Exploration effort counters (mirrored into ``verify.*``)."""

    states_explored: int = 0
    #: Enabled transitions skipped by the partial-order reduction.
    states_pruned: int = 0
    #: Transitions whose successor was already memoized.
    memo_hits: int = 0
    transitions: int = 0
    max_depth_reached: int = 0


@dataclass
class ExploreResult:
    """Outcome of one bounded exploration."""

    verdict: Verdict
    stats: ExploreStats
    witness: Optional[WitnessSchedule] = None
    deadlocked: Tuple[int, ...] = ()
    witness_cycle: Tuple[int, ...] = ()
    blocked_ops: Dict[int, OpRef] = field(default_factory=dict)
    conditions: Dict[int, WaitForCondition] = field(default_factory=dict)
    graph: Optional[WaitForGraph] = None
    detection: Optional[DetectionResult] = None
    reason: str = ""
    #: Decidable-fragment label when this result came from the linear
    #: fast path (:mod:`repro.analysis.symbolic.fragments`); empty for
    #: genuine state-graph explorations.
    fragment: str = ""

    @property
    def has_deadlock(self) -> bool:
        return self.verdict is Verdict.DEADLOCK_POSSIBLE


class _State(NamedTuple):
    """Hashable memoization key; everything else is derivable."""

    pcs: Tuple[int, ...]
    #: True when the op at ``pcs[r]`` had its posting side effect and
    #: the rank is parked in it.
    posted: Tuple[bool, ...]
    #: Unmatched posted sends (messages in flight).
    inflight: FrozenSet[OpRef]
    #: Unmatched posted receives.
    pending: FrozenSet[OpRef]
    #: Per-rank request ids consumed by completions.
    consumed: Tuple[FrozenSet[int], ...]


class _Transition(NamedTuple):
    rank: int
    #: For a receive with candidates: the message (send op ref) taken.
    cand: Optional[OpRef]


class _Model:
    """Static tables + transition semantics over extracted sequences."""

    def __init__(
        self, sequences: Sequence[Sequence[Operation]], comms: CommRegistry
    ) -> None:
        self.seqs: List[List[Operation]] = [list(s) for s in sequences]
        self.comms = comms
        self.p = len(self.seqs)
        self.lens = [len(s) for s in self.seqs]

        #: Per rank: request id -> creating (nonblocking p2p) operation.
        self.creators: List[Dict[int, Operation]] = []
        for seq in self.seqs:
            table: Dict[int, Operation] = {}
            for op in seq:
                if op.request is not None and op.kind in _REQUEST_CREATOR_KINDS:
                    table[op.request] = op
            self.creators.append(table)

        #: Collective wave bookkeeping: op ref -> (comm, wave index),
        #: and (comm, wave index) -> {member rank: ts of its call}.
        self.wave_of: Dict[OpRef, Tuple[int, int]] = {}
        self.wave_members: Dict[Tuple[int, int], Dict[int, int]] = {}
        counts: Dict[Tuple[int, int], int] = {}
        for r, seq in enumerate(self.seqs):
            for op in seq:
                if not is_collective_kind(op.kind):
                    continue
                key = (r, op.comm_id)
                idx = counts.get(key, 0)
                counts[key] = idx + 1
                self.wave_of[op.ref] = (op.comm_id, idx)
                self.wave_members.setdefault((op.comm_id, idx), {})[r] = op.ts
        self._check_waves()

        #: First MPI_Finalize position per rank (None: rank never
        #: finalizes — the world finalize wave then never completes).
        self.finalize_ts: List[Optional[int]] = []
        for seq in self.seqs:
            ts = next(
                (op.ts for op in seq if op.kind is OpKind.FINALIZE), None
            )
            self.finalize_ts.append(ts)

        # POR tables: destinations observed by a wildcard receive or
        # probe anywhere, and channels with at least one sender.
        self.wildcard_dst: Set[Tuple[int, int]] = set()
        self.has_senders: Set[Tuple[int, int]] = set()
        for r, seq in enumerate(self.seqs):
            for op in seq:
                if (
                    (is_recv_kind(op.kind) or op.is_probe())
                    and op.peer == ANY_SOURCE
                ):
                    self.wildcard_dst.add((op.comm_id, r))
                if is_send_kind(op.kind) and op.peer not in (
                    PROC_NULL,
                    None,
                ):
                    self.has_senders.add((op.comm_id, op.peer))

    def _check_waves(self) -> None:
        """Reject what the engine rejects as collective usage errors."""
        for (comm_id, idx), members in self.wave_members.items():
            if comm_id not in self.comms:
                raise ExplorationUnsupported(
                    f"collective on unknown communicator {comm_id}"
                )
            group = self.comms.get(comm_id).group
            kinds = set()
            roots = set()
            for r, ts in members.items():
                if r not in group:
                    raise ExplorationUnsupported(
                        f"rank {r} calls a collective on communicator "
                        f"{comm_id} it does not belong to"
                    )
                op = self.seqs[r][ts]
                kinds.add(op.kind)
                roots.add(op.root)
            if len(kinds) > 1 or len(roots) > 1:
                raise ExplorationUnsupported(
                    f"mismatched collective wave {idx} on communicator "
                    f"{comm_id} ({', '.join(sorted(k.value for k in kinds))})"
                )

    # -- state basics ---------------------------------------------------

    def initial_state(self) -> _State:
        empty: FrozenSet[OpRef] = frozenset()
        return _State(
            pcs=tuple(0 for _ in range(self.p)),
            posted=tuple(False for _ in range(self.p)),
            inflight=empty,
            pending=empty,
            consumed=tuple(frozenset() for _ in range(self.p)),
        )

    def _op_at(self, state: _State, rank: int) -> Operation:
        return self.seqs[rank][state.pcs[rank]]

    # -- matching queries ------------------------------------------------

    def _recv_candidates(
        self,
        op: Operation,
        inflight: FrozenSet[OpRef] | Set[OpRef],
    ) -> List[Operation]:
        """Per-sender earliest compatible message, sorted by sender."""
        per_sender: Dict[int, Operation] = {}
        for ref in inflight:
            sop = self.seqs[ref[0]][ref[1]]
            if sop.comm_id != op.comm_id or sop.peer != op.rank:
                continue
            if op.peer != ANY_SOURCE and op.peer != sop.rank:
                continue
            if op.tag != ANY_TAG and op.tag != sop.tag:
                continue
            best = per_sender.get(sop.rank)
            if best is None or sop.ts < best.ts:
                per_sender[sop.rank] = sop
        return [per_sender[src] for src in sorted(per_sender)]

    def _forced_recv(
        self,
        sop: Operation,
        pending: Set[OpRef],
    ) -> Optional[Operation]:
        """The receive a newly arrived message pairs with (earliest
        compatible posted receive, in post order), or None."""
        best: Optional[Operation] = None
        for ref in pending:
            rop = self.seqs[ref[0]][ref[1]]
            if rop.comm_id != sop.comm_id or rop.rank != sop.peer:
                continue
            if rop.peer != ANY_SOURCE and rop.peer != sop.rank:
                continue
            if rop.tag != ANY_TAG and rop.tag != sop.tag:
                continue
            if best is None or rop.ts < best.ts:
                best = rop
        return best

    def _probe_sees_message(
        self,
        op: Operation,
        inflight: FrozenSet[OpRef] | Set[OpRef],
    ) -> bool:
        for ref in inflight:
            sop = self.seqs[ref[0]][ref[1]]
            if sop.comm_id != op.comm_id or sop.peer != op.rank:
                continue
            if op.peer != ANY_SOURCE and op.peer != sop.rank:
                continue
            if op.tag != ANY_TAG and op.tag != sop.tag:
                continue
            return True
        return False

    # -- enabled transitions ----------------------------------------------

    def enabled(self, state: _State) -> List[_Transition]:
        out: List[_Transition] = []
        for r in range(self.p):
            if state.pcs[r] >= self.lens[r] or state.posted[r]:
                continue
            op = self.seqs[r][state.pcs[r]]
            if (
                is_recv_kind(op.kind)
                and op.peer != PROC_NULL
            ):
                cands = self._recv_candidates(op, state.inflight)
                if not cands:
                    out.append(_Transition(r, None))
                elif op.peer != ANY_SOURCE:
                    # Directed: per-sender earliest is unique.
                    out.append(_Transition(r, cands[0].ref))
                else:
                    out.extend(_Transition(r, c.ref) for c in cands)
            else:
                out.append(_Transition(r, None))
        return out

    # -- partial-order reduction ------------------------------------------

    def is_safe(self, state: _State, t: _Transition) -> bool:
        """Safe = effect-deterministic, commutes with every other
        enabled transition, and cannot change a future wildcard (or
        probe) candidate set. Safe transitions stay enabled until
        executed, so chaining one loses no reachable terminal state."""
        op = self._op_at(state, t.rank)
        kind = op.kind
        if op.is_p2p() and op.peer == PROC_NULL:
            return True
        if kind in _LOCAL_KINDS:
            return True
        if kind in (OpKind.WAIT, OpKind.WAITALL):
            # Needs *all* requests: consumption set is fixed, timing
            # invisible to other ranks. (WAITANY/WAITSOME are not safe:
            # which request they consume depends on event timing.)
            return True
        if is_collective_kind(kind) or kind is OpKind.FINALIZE:
            # Arrival only enables; wave completion is deterministic.
            return True
        if is_send_kind(kind):
            # Adding a message to a channel nobody wildcards on cannot
            # change any candidate set; directed receives/probes at the
            # destination are FIFO-deterministic regardless of timing.
            return (op.comm_id, op.peer) not in self.wildcard_dst
        if is_recv_kind(kind):
            if op.peer != ANY_SOURCE:
                # Directed receive: the message it takes is fixed by
                # per-sender FIFO, and nobody else can take it (only
                # this rank receives/probes on its own queues, in
                # program order).
                return True
            # A wildcard receive on a channel without any sender can
            # only pend — the Fig. 10 storm collapses to linear here.
            return (op.comm_id, op.rank) not in self.has_senders
        # PROBE (message could be stealable before execution), TEST*,
        # WAITANY, WAITSOME: timing-dependent.
        return False

    # -- transition application -------------------------------------------

    def apply(
        self, state: _State, t: _Transition
    ) -> Tuple[_State, List[Tuple[OpRef, int]]]:
        """Execute ``t`` plus its deterministic closure (mirrors the
        engine's wake chains); returns the new state and any wildcard
        pinnings recorded by matches along the way."""
        pcs = list(state.pcs)
        posted = list(state.posted)
        inflight = set(state.inflight)
        pending = set(state.pending)
        consumed = [set(c) for c in state.consumed]
        pins: List[Tuple[OpRef, int]] = []
        seqs = self.seqs

        def advance(k: int) -> None:
            pcs[k] += 1
            posted[k] = False

        def request_done(k: int, req_id: int) -> bool:
            creator = self.creators[k].get(req_id)
            if creator is None:
                raise ExplorationUnsupported(
                    f"rank {k} completes unknown request {req_id} "
                    "(the engine would raise an MPI usage error)"
                )
            if pcs[k] <= creator.ts:
                return False  # not executed yet
            if creator.peer == PROC_NULL:
                return True
            if is_send_kind(creator.kind):
                if creator.kind in _BUFFERED_SEND_KINDS:
                    return True
                return creator.ref not in inflight
            return creator.ref not in pending

        def try_completion(k: int, wop: Operation) -> bool:
            """Engine ``_try_completion``: consume + advance on success."""
            reqs = list(wop.requests)
            for q in reqs:
                if q in consumed[k]:
                    raise ExplorationUnsupported(
                        f"rank {k} reuses already-completed request {q}"
                    )
            done_idx = [
                i for i, q in enumerate(reqs) if request_done(k, q)
            ]
            kind = wop.kind
            if kind in (
                OpKind.WAIT,
                OpKind.WAITALL,
                OpKind.TEST,
                OpKind.TESTALL,
            ):
                if len(done_idx) != len(reqs):
                    return False
                consumed[k].update(reqs)
                advance(k)
                return True
            if kind in (OpKind.WAITANY, OpKind.TESTANY):
                if not done_idx:
                    return False
                consumed[k].add(reqs[done_idx[0]])
                advance(k)
                return True
            if kind in (OpKind.WAITSOME, OpKind.TESTSOME):
                if not done_idx:
                    return False
                for i in done_idx:
                    consumed[k].add(reqs[i])
                advance(k)
                return True
            raise AssertionError(kind)

        def recheck_completion(k: int) -> None:
            """A request of rank ``k`` completed; wake a parked WAIT*."""
            if pcs[k] >= self.lens[k] or not posted[k]:
                return
            wop = seqs[k][pcs[k]]
            if wop.kind in _WAIT_PARK_KINDS:
                try_completion(k, wop)

        def send_side_completed(sop: Operation) -> None:
            """An in-flight send just matched: wake its sender."""
            k = sop.rank
            if sop.kind in _RENDEZVOUS_BLOCKING_SENDS:
                # A blocking unmatched send implies the sender parked
                # in it; the match releases it.
                if pcs[k] == sop.ts and posted[k]:
                    advance(k)
            elif sop.kind not in _BUFFERED_SEND_KINDS:
                # Rendezvous request (isend/issend/pstart) newly done.
                recheck_completion(k)

        def recv_side_completed(rop: Operation, src: int) -> None:
            """A pending receive just matched: wake its receiver."""
            if rop.peer == ANY_SOURCE:
                pins.append((rop.ref, src))
            k = rop.rank
            if rop.kind is OpKind.RECV:
                if pcs[k] == rop.ts and posted[k]:
                    advance(k)
            else:
                recheck_completion(k)

        def wake_parked_probe(comm_id: int, dst: int) -> None:
            """Engine ``_notify_probe_waiters`` for one destination."""
            if dst >= self.p or pcs[dst] >= self.lens[dst]:
                return
            if not posted[dst]:
                return
            wop = seqs[dst][pcs[dst]]
            if wop.kind is not OpKind.PROBE or wop.comm_id != comm_id:
                return
            if self._probe_sees_message(wop, inflight):
                advance(dst)

        def finalize_arrivals() -> int:
            count = 0
            for m in range(self.p):
                ts = self.finalize_ts[m]
                if ts is None:
                    continue
                if pcs[m] > ts or (pcs[m] == ts and posted[m]):
                    count += 1
            return count

        r = t.rank
        op = seqs[r][pcs[r]]
        kind = op.kind

        if op.is_p2p() and op.peer == PROC_NULL:
            advance(r)
        elif is_send_kind(kind):
            rop = self._forced_recv(op, pending)
            if rop is not None:
                pending.discard(rop.ref)
                advance(r)  # matched: call/request completes at post
                recv_side_completed(rop, r)
            else:
                inflight.add(op.ref)
                if kind in _RENDEZVOUS_BLOCKING_SENDS:
                    posted[r] = True  # strict b: park until matched
                else:
                    advance(r)
                wake_parked_probe(op.comm_id, op.peer)
        elif is_recv_kind(kind):
            if t.cand is not None:
                sop = seqs[t.cand[0]][t.cand[1]]
                inflight.discard(t.cand)
                if op.peer == ANY_SOURCE:
                    pins.append((op.ref, sop.rank))
                advance(r)
                send_side_completed(sop)
            else:
                pending.add(op.ref)
                if kind is OpKind.RECV:
                    posted[r] = True
                else:
                    advance(r)
        elif kind is OpKind.PROBE:
            if self._probe_sees_message(op, inflight):
                advance(r)
            else:
                posted[r] = True
        elif kind is OpKind.IPROBE:
            advance(r)
        elif is_completion_kind(kind):
            if not try_completion(r, op):
                if kind in _WAIT_PARK_KINDS:
                    posted[r] = True
                else:
                    advance(r)  # TEST flavours never block
        elif is_collective_kind(kind):
            posted[r] = True
            comm_id, idx = self.wave_of[op.ref]
            members = self.wave_members[(comm_id, idx)]
            group = self.comms.get(comm_id).group
            complete = all(
                m in members
                and (
                    pcs[m] > members[m]
                    or (pcs[m] == members[m] and posted[m])
                )
                for m in group
            )
            if complete:
                for m in group:
                    if pcs[m] == members[m] and posted[m]:
                        advance(m)
        elif kind is OpKind.FINALIZE:
            posted[r] = True
            if finalize_arrivals() == self.p:
                for m in range(self.p):
                    ts = self.finalize_ts[m]
                    if ts is not None and pcs[m] == ts and posted[m]:
                        advance(m)
        elif kind in _LOCAL_KINDS:
            advance(r)
        else:
            raise ExplorationUnsupported(
                f"cannot explore {kind.value}"
            )

        new_state = _State(
            pcs=tuple(pcs),
            posted=tuple(posted),
            inflight=frozenset(inflight),
            pending=frozenset(pending),
            consumed=tuple(frozenset(c) for c in consumed),
        )
        return new_state, pins

    # -- terminal-state classification -------------------------------------

    def classify_terminal(
        self, state: _State
    ) -> Tuple[Dict[int, OpRef], Set[int]]:
        """Blocked ops + finished ranks of a transition-free state.

        Mirrors the runtime analysis (`core.transition.finished`): a
        rank sitting in MPI_Finalize counts as finished, not blocked —
        it produced all its communication and can release nobody.
        """
        blocked: Dict[int, OpRef] = {}
        finished: Set[int] = set()
        for r in range(self.p):
            if state.pcs[r] >= self.lens[r]:
                finished.add(r)
                continue
            op = self.seqs[r][state.pcs[r]]
            if op.kind is OpKind.FINALIZE:
                finished.add(r)
            else:
                blocked[r] = op.ref
        return blocked, finished

    def blocked_condition(
        self, state: _State, rank: int
    ) -> WaitForCondition:
        """Wait-for condition of a parked rank at a terminal state
        (mirrors the reason strings of the runtime WFG path)."""
        op = self.seqs[rank][state.pcs[rank]]
        cond = WaitForCondition(
            rank=rank, op_ref=op.ref, op_description=op.describe()
        )
        kind = op.kind

        def p2p_clause(
            creator: Operation,
        ) -> Tuple[WaitTarget, ...]:
            if is_send_kind(creator.kind):
                return (
                    intern_target(
                        creator.peer, "no matching receive posted"
                    ),
                )
            if creator.peer != ANY_SOURCE:
                return (
                    intern_target(creator.peer, "no matching send posted"),
                )
            group = self.comms.get(creator.comm_id).group
            return tuple(
                intern_target(k, "wildcard receive: any sender qualifies")
                for k in group
                if k != creator.rank
            )

        if is_send_kind(kind):
            cond.clauses.append(
                (intern_target(op.peer, "no matching receive posted"),)
            )
        elif is_recv_kind(kind) or op.is_probe():
            cond.clauses.append(p2p_clause(op))
        elif kind in _WAIT_PARK_KINDS:
            unsatisfied: List[Tuple[WaitTarget, ...]] = []
            for q in op.requests:
                if q in state.consumed[rank]:
                    continue
                creator = self.creators[rank].get(q)
                if creator is None:
                    continue
                done = False
                if creator.ts < state.pcs[rank]:
                    if creator.peer == PROC_NULL:
                        done = True
                    elif is_send_kind(creator.kind):
                        done = (
                            creator.kind in _BUFFERED_SEND_KINDS
                            or creator.ref not in state.inflight
                        )
                    else:
                        done = creator.ref not in state.pending
                if not done:
                    unsatisfied.append(p2p_clause(creator))
            if kind in (OpKind.WAIT, OpKind.WAITALL):
                cond.clauses.extend(unsatisfied)
            else:
                # Any one completion releases the rank: flatten into a
                # single OR clause.
                flat: List[WaitTarget] = []
                seen: Set[Tuple[int, str]] = set()
                for clause in unsatisfied:
                    for tgt in clause:
                        key = (tgt.rank, tgt.reason)
                        if key not in seen:
                            seen.add(key)
                            flat.append(tgt)
                cond.clauses.append(tuple(flat))
        elif is_collective_kind(kind):
            comm_id, idx = self.wave_of[op.ref]
            members = self.wave_members[(comm_id, idx)]
            group = self.comms.get(comm_id).group
            for m in group:
                ts = members.get(m)
                arrived = ts is not None and (
                    state.pcs[m] > ts
                    or (state.pcs[m] == ts and state.posted[m])
                )
                if not arrived:
                    cond.clauses.append(
                        (
                            intern_target(
                                m,
                                "never called a matching "
                                f"{op.kind.value} on communicator "
                                f"{op.comm_id}",
                            ),
                        )
                    )
        return cond


def _flush_metrics(
    metrics: Optional[MetricsRegistry],
    stats: ExploreStats,
    verdict: Optional[Verdict],
) -> None:
    if metrics is None:
        return
    metrics.inc("verify.runs")
    metrics.inc("verify.states_explored", stats.states_explored)
    metrics.inc("verify.states_pruned", stats.states_pruned)
    metrics.inc("verify.memo_hits", stats.memo_hits)
    metrics.inc("verify.transitions", stats.transitions)
    if verdict is Verdict.DEADLOCK_POSSIBLE:
        metrics.inc("verify.deadlocks_found")
    elif verdict is Verdict.BOUND_EXCEEDED:
        metrics.inc("verify.bound_exceeded")


def explore_sequences(
    sequences: Sequence[Sequence[Operation]],
    comms: CommRegistry,
    *,
    max_states: int = DEFAULT_MAX_STATES,
    max_depth: int = DEFAULT_MAX_DEPTH,
    por: bool = True,
    metrics: Optional[MetricsRegistry] = None,
    label: str = "",
) -> ExploreResult:
    """Explore every feasible schedule/matching of ``sequences``.

    Depth-first over the acyclic state graph with memoization; the
    first reachable deadlocked terminal state ends the search with a
    witness (the DFS path is the schedule). ``por=False`` disables the
    partial-order reduction — exploration is then the naive memoized
    enumeration (used by the POR soundness/ratio tests).
    """
    model = _Model(sequences, comms)
    stats = ExploreStats()

    def finish(
        verdict: Verdict, **kw: object
    ) -> ExploreResult:
        result = ExploreResult(verdict=verdict, stats=stats, **kw)  # type: ignore[arg-type]
        _flush_metrics(metrics, stats, verdict)
        return result

    def choose(state: _State, ts: List[_Transition]) -> List[_Transition]:
        if not por or len(ts) <= 1:
            return ts
        per_rank: Dict[int, int] = {}
        for t in ts:
            per_rank[t.rank] = per_rank.get(t.rank, 0) + 1
        for t in ts:
            if per_rank[t.rank] == 1 and model.is_safe(state, t):
                stats.states_pruned += len(ts) - 1
                return [t]
        return ts

    root = model.initial_state()
    visited: Set[_State] = {root}
    stats.states_explored = 1

    root_enabled = model.enabled(root)
    if not root_enabled:
        blocked, _ = model.classify_terminal(root)
        # No operation ever executed: nothing can be parked.
        assert not blocked
        return finish(Verdict.DEADLOCK_FREE)

    frames: List[Tuple[_State, Iterator[_Transition]]] = [
        (root, iter(choose(root, root_enabled)))
    ]
    #: One (issuing rank, pinnings) entry per frame transition taken.
    path: List[Tuple[int, List[Tuple[OpRef, int]]]] = []

    while frames:
        state, it = frames[-1]
        t = next(it, None)
        if t is None:
            frames.pop()
            if path:
                path.pop()
            continue
        new_state, pins = model.apply(state, t)
        stats.transitions += 1
        if new_state in visited:
            stats.memo_hits += 1
            continue
        if len(visited) >= max_states:
            return finish(
                Verdict.BOUND_EXCEEDED,
                reason=f"state bound {max_states} reached",
            )
        visited.add(new_state)
        stats.states_explored += 1

        enabled = model.enabled(new_state)
        if not enabled:
            blocked, finished = model.classify_terminal(new_state)
            if blocked:
                conditions = {
                    r: model.blocked_condition(new_state, r)
                    for r in sorted(blocked)
                }
                graph = WaitForGraph.from_conditions(
                    model.p, conditions.values(), finished=finished
                )
                detection = detect_deadlock(graph)
                if detection.has_deadlock:
                    schedule = [rank for rank, _ in path] + [t.rank]
                    pinnings: Dict[OpRef, int] = {}
                    for _, step_pins in path:
                        pinnings.update(step_pins)
                    pinnings.update(pins)
                    witness = WitnessSchedule(
                        num_ranks=model.p,
                        schedule=schedule,
                        pinnings=pinnings,
                        deadlocked=detection.deadlocked,
                        blocked_ops=dict(blocked),
                        witness_cycle=tuple(detection.witness_cycle),
                        label=label,
                    )
                    return finish(
                        Verdict.DEADLOCK_POSSIBLE,
                        witness=witness,
                        deadlocked=detection.deadlocked,
                        witness_cycle=tuple(detection.witness_cycle),
                        blocked_ops=dict(blocked),
                        conditions=conditions,
                        graph=graph,
                        detection=detection,
                    )
            continue
        if len(path) + 1 >= max_depth:
            return finish(
                Verdict.BOUND_EXCEEDED,
                reason=f"depth bound {max_depth} reached",
            )
        path.append((t.rank, pins))
        if len(path) > stats.max_depth_reached:
            stats.max_depth_reached = len(path)
        frames.append((new_state, iter(choose(new_state, enabled))))

    return finish(Verdict.DEADLOCK_FREE)


def explore_extraction(
    extraction: Extraction,
    **kwargs: object,
) -> ExploreResult:
    """Explore an :class:`Extraction`, guarding its exactness contract."""
    if extraction.truncated:
        raise ExplorationUnsupported(
            "extraction truncated ranks "
            f"{sorted(extraction.truncated)}; sequences are incomplete"
        )
    if not (extraction.exact or extraction.wildcard_exact):
        raise ExplorationUnsupported(
            "extracted sequences are inexact beyond wildcard statuses "
            "(probe/test results may have steered control flow)"
        )
    return explore_sequences(
        extraction.sequences, extraction.comms, **kwargs  # type: ignore[arg-type]
    )
