"""Sequential-model matching of wildcard-free operation sequences.

Replays per-rank sequences against a deterministic model of the strict
blocking semantics ``b`` (rendezvous sends, synchronizing
collectives), in the style of Liao et al.'s sequential MPI model
checking: because MPI guarantees non-overtaking per (source,
destination, communicator) channel, a wildcard-free execution has
exactly one matching, so a single sequential replay decides
deadlock freedom. Wildcards from recorded traces can be resolved with
the observed matching first (``resolve_observed``); unresolved
wildcards make the model inapplicable and the replay refuses rather
than guess.

On a stuck state the blocked ranks' wait-for conditions are handed to
the existing AND/OR wait-for graph machinery (:mod:`repro.wfg`), so
static reports share cycle extraction and rendering with the runtime
analysis.
"""
from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.waitfor import WaitForCondition, WaitTarget
from repro.mpi.communicator import CommRegistry
from repro.mpi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    PROC_NULL,
    OpKind,
    is_collective_kind,
    is_completion_kind,
)
from repro.mpi.ops import Operation
from repro.wfg.detect import DetectionResult, detect_deadlock
from repro.wfg.graph import WaitForGraph

#: Sends that complete at posting even under the strict semantics.
_BUFFERED_SENDS = frozenset(
    {OpKind.BSEND, OpKind.RSEND, OpKind.IBSEND, OpKind.IRSEND}
)

_TEST_KINDS = frozenset(
    {OpKind.TEST, OpKind.TESTALL, OpKind.TESTANY, OpKind.TESTSOME}
)


@dataclass
class StaticMatchResult:
    """Verdict of one sequential replay."""

    applicable: bool
    deadlocked: Tuple[int, ...] = ()
    witness_cycle: Tuple[int, ...] = ()
    #: Blocked op of every stuck rank (deadlocked or not).
    blocked_ops: Dict[int, Operation] = field(default_factory=dict)
    finished: Set[int] = field(default_factory=set)
    graph: Optional[WaitForGraph] = None
    detection: Optional[DetectionResult] = None
    reason_skipped: str = ""
    #: Machine-readable reason when ``applicable`` is False (e.g.
    #: ``"wildcard-unsupported"``), so callers can report a structured
    #: finding and route the program to the match-set explorer.
    skipped_check: str = ""
    #: Decidable-fragment label backing this verdict — the shared
    #: vocabulary of :mod:`repro.analysis.symbolic.fragments`
    #: (``SEQ-DETERMINISTIC`` when the replay was authoritative,
    #: ``UNDECIDABLE`` when it refused).
    fragment: str = ""

    @property
    def has_deadlock(self) -> bool:
        return bool(self.deadlocked)


@dataclass
class _Posted:
    """One send or receive sitting in a channel."""

    op: Operation
    paired: bool = False


@dataclass
class _Request:
    is_recv: bool
    peer: int
    posted: Optional[_Posted] = None
    done: bool = False
    consumed: bool = False


class _Channel:
    """FIFO matching state of one (comm, src, dst) message channel."""

    def __init__(self) -> None:
        self.sends: List[_Posted] = []
        self.recvs: List[_Posted] = []

    @staticmethod
    def _compatible(recv: Operation, send: Operation) -> bool:
        return recv.tag == ANY_TAG or recv.tag == send.tag

    def post_send(self, posted: _Posted) -> Optional[_Posted]:
        for i, recv in enumerate(self.recvs):
            if self._compatible(recv.op, posted.op):
                del self.recvs[i]
                recv.paired = True
                posted.paired = True
                return recv
        self.sends.append(posted)
        return None

    def post_recv(self, posted: _Posted) -> Optional[_Posted]:
        for i, send in enumerate(self.sends):
            if self._compatible(posted.op, send.op):
                del self.sends[i]
                send.paired = True
                posted.paired = True
                return send
        self.recvs.append(posted)
        return None

    def probe_visible(self, probe: Operation) -> bool:
        return any(self._compatible(probe, s.op) for s in self.sends)


class _Replay:
    """Mutable state of one sequential replay."""

    def __init__(
        self, sequences: Sequence[Sequence[Operation]], comms: CommRegistry
    ) -> None:
        self.sequences = sequences
        self.comms = comms
        self.p = len(sequences)
        self.pc = [0] * self.p
        #: Index of the op whose posting side effect already ran.
        self.posted_pc = [-1] * self.p
        self.channels: Dict[Tuple[int, int, int], _Channel] = {}
        self.requests: List[Dict[int, _Request]] = [
            {} for _ in range(self.p)
        ]
        #: Per (comm, rank): how many collective waves entered so far.
        self.wave_no: Dict[Tuple[int, int], int] = {}
        #: (comm, wave index) -> arrived ranks.
        self.waves: Dict[Tuple[int, int], Dict[int, Operation]] = {}
        self.finished: Set[int] = set()
        #: Posted entries of blocking (request-less) p2p ops, keyed by
        #: op identity so retries of a blocked op reuse one entry.
        self._blocking_cache: Dict[Tuple[int, int], _Posted] = {}

    def channel(self, comm_id: int, src: int, dst: int) -> _Channel:
        key = (comm_id, src, dst)
        chan = self.channels.get(key)
        if chan is None:
            chan = _Channel()
            self.channels[key] = chan
        return chan

    # -- helpers --------------------------------------------------------

    def _post_once(self, rank: int) -> None:
        self.posted_pc[rank] = self.pc[rank]

    def _needs_post(self, rank: int) -> bool:
        return self.posted_pc[rank] < self.pc[rank]

    def _complete_pair(self, a: _Posted, b: _Posted) -> None:
        for posted in (a, b):
            req_id = posted.op.request
            if req_id is not None:
                req = self.requests[posted.op.rank].get(req_id)
                if req is not None:
                    req.done = True

    # -- one step -------------------------------------------------------

    def try_advance(self, rank: int) -> bool:
        """Process the op at ``pc[rank]``; True when the rank advanced."""
        op = self.sequences[rank][self.pc[rank]]
        kind = op.kind

        if op.is_p2p() and op.peer == PROC_NULL:
            if op.request is not None:
                self.requests[rank][op.request] = _Request(
                    is_recv=op.is_recv(), peer=PROC_NULL, done=True
                )
            return self._step(rank)

        if op.is_send():
            return self._advance_send(rank, op)
        if op.is_recv():
            return self._advance_recv(rank, op)
        if op.is_probe():
            chan = self.channel(op.comm_id, op.peer, rank)
            if kind is OpKind.IPROBE:
                return self._step(rank)
            return self._step(rank) if chan.probe_visible(op) else False
        if is_completion_kind(kind):
            return self._advance_completion(rank, op)
        if kind in (OpKind.SEND_INIT, OpKind.RECV_INIT,
                    OpKind.REQUEST_FREE):
            return self._step(rank)
        if is_collective_kind(kind):
            return self._advance_collective(rank, op)
        if kind is OpKind.FINALIZE:
            self.finished.add(rank)
            return self._step(rank)
        # Unknown kinds (e.g. a marker) never block.
        return self._step(rank)

    def _step(self, rank: int) -> bool:
        self.pc[rank] += 1
        self.posted_pc[rank] = self.pc[rank] - 1
        return True

    def _advance_send(self, rank: int, op: Operation) -> bool:
        posted = self._posted_entry(rank, op)
        if self._needs_post(rank):
            self._post_once(rank)
            chan = self.channel(op.comm_id, rank, op.peer)
            partner = chan.post_send(posted)
            if partner is not None:
                self._complete_pair(posted, partner)
        buffered = op.kind in _BUFFERED_SENDS
        if buffered or op.kind in (OpKind.ISEND, OpKind.ISSEND,
                                   OpKind.PSTART_SEND):
            req = self.requests[rank].get(op.request)
            if req is not None and buffered:
                req.done = True
            return self._step(rank)
        # Blocking rendezvous send: complete only once paired.
        return self._step(rank) if posted.paired else False

    def _advance_recv(self, rank: int, op: Operation) -> bool:
        posted = self._posted_entry(rank, op)
        if self._needs_post(rank):
            self._post_once(rank)
            chan = self.channel(op.comm_id, op.peer, rank)
            partner = chan.post_recv(posted)
            if partner is not None:
                self._complete_pair(posted, partner)
        if op.kind in (OpKind.IRECV, OpKind.PSTART_RECV):
            return self._step(rank)
        return self._step(rank) if posted.paired else False

    def _posted_entry(self, rank: int, op: Operation) -> _Posted:
        if op.request is not None:
            req = self.requests[rank].get(op.request)
            if req is None:
                req = _Request(is_recv=op.is_recv(), peer=op.peer)
                self.requests[rank][op.request] = req
            if req.posted is None:
                req.posted = _Posted(op)
            return req.posted
        key = (rank, op.ts)
        entry = self._blocking_cache.get(key)
        if entry is None:
            entry = _Posted(op)
            self._blocking_cache[key] = entry
        return entry

    def _advance_completion(self, rank: int, op: Operation) -> bool:
        reqs = [self.requests[rank].get(r) for r in op.requests]
        if op.kind in _TEST_KINDS:
            # Tests never block; consume the recorded outcome if any.
            if op.test_flag:
                indices = op.completed_indices or range(len(reqs))
                for i in indices:
                    if i < len(reqs) and reqs[i] is not None and reqs[i].done:
                        reqs[i].consumed = True
            return self._step(rank)
        if op.kind in (OpKind.WAIT, OpKind.WAITALL):
            pending = [r for r in reqs if r is not None]
            if len(pending) != len(reqs):
                return False  # unknown request: typestate checker flags it
            if any(r.consumed for r in pending):
                return False  # double wait: typestate checker flags it
            if all(r.done for r in pending):
                for r in pending:
                    r.consumed = True
                return self._step(rank)
            return False
        # WAITANY / WAITSOME: recorded outcome wins, else earliest done.
        if op.completed_indices:
            targets = [
                reqs[i]
                for i in op.completed_indices
                if i < len(reqs) and reqs[i] is not None
            ]
            if targets and all(r.done for r in targets):
                for r in targets:
                    r.consumed = True
                return self._step(rank)
            return False
        done = [r for r in reqs if r is not None and r.done and not r.consumed]
        if done:
            done[0].consumed = True
            return self._step(rank)
        return False

    def _advance_collective(self, rank: int, op: Operation) -> bool:
        comm = self.comms.get(op.comm_id)
        if self._needs_post(rank):
            self._post_once(rank)
            idx = self.wave_no.get((op.comm_id, rank), 0)
            self.wave_no[(op.comm_id, rank)] = idx + 1
            self.waves.setdefault((op.comm_id, idx), {})[rank] = op
        idx = self.wave_no[(op.comm_id, rank)] - 1
        wave = self.waves[(op.comm_id, idx)]
        if set(wave) == set(comm.group):
            return self._step(rank)
        return False

    # -- stuck-state diagnosis ------------------------------------------

    def blocked_condition(self, rank: int) -> WaitForCondition:
        op = self.sequences[rank][self.pc[rank]]
        cond = WaitForCondition(
            rank=rank, op_ref=op.ref, op_description=op.describe()
        )
        if op.is_send():
            cond.clauses.append(
                (WaitTarget(op.peer, "no matching receive posted"),)
            )
        elif op.is_recv() or op.is_probe():
            cond.clauses.append(
                (WaitTarget(op.peer, "no matching send posted"),)
            )
        elif is_completion_kind(op.kind):
            clauses = self._completion_clauses(rank, op)
            if op.kind in (OpKind.WAITANY, OpKind.WAITSOME):
                flat: List[WaitTarget] = []
                for clause in clauses:
                    flat.extend(clause)
                cond.clauses.append(tuple(flat))
            else:
                cond.clauses.extend(clauses)
        elif op.is_collective():
            comm = self.comms.get(op.comm_id)
            idx = self.wave_no[(op.comm_id, rank)] - 1
            wave = self.waves[(op.comm_id, idx)]
            for member in comm.group:
                if member != rank and member not in wave:
                    cond.clauses.append(
                        (
                            WaitTarget(
                                member,
                                f"never called a matching "
                                f"{op.kind.value} on communicator "
                                f"{op.comm_id}",
                            ),
                        )
                    )
        return cond

    def _completion_clauses(
        self, rank: int, op: Operation
    ) -> List[Tuple[WaitTarget, ...]]:
        clauses: List[Tuple[WaitTarget, ...]] = []
        for req_id in op.requests:
            req = self.requests[rank].get(req_id)
            if req is None or req.done or req.consumed:
                continue
            reason = (
                "no matching send posted"
                if req.is_recv
                else "no matching receive posted"
            )
            clauses.append((WaitTarget(req.peer, reason),))
        return clauses


def _has_unresolved_wildcards(
    sequences: Sequence[Sequence[Operation]],
) -> Optional[Operation]:
    for seq in sequences:
        for op in seq:
            if (op.is_recv() or op.is_probe()) and op.peer == ANY_SOURCE:
                return op
    return None


def _resolve_with_observations(
    sequences: Sequence[Sequence[Operation]],
) -> List[List[Operation]]:
    """Pin recorded wildcard receives to their observed source/tag."""
    resolved: List[List[Operation]] = []
    for seq in sequences:
        out: List[Operation] = []
        for op in seq:
            if (
                (op.is_recv() or op.is_probe())
                and op.peer == ANY_SOURCE
                and op.observed_peer is not None
            ):
                tag = op.tag
                if tag == ANY_TAG and op.observed_tag is not None:
                    tag = op.observed_tag
                op = replace(op, peer=op.observed_peer, tag=tag)
            out.append(op)
        resolved.append(out)
    return resolved


def match_sequences(
    sequences: Sequence[Sequence[Operation]],
    comms: CommRegistry,
    *,
    resolve_observed: bool = False,
    max_steps: int = 10_000_000,
) -> StaticMatchResult:
    """Replay ``sequences`` under the deterministic sequential model."""
    if resolve_observed:
        sequences = _resolve_with_observations(sequences)
    wildcard = _has_unresolved_wildcards(sequences)
    if wildcard is not None:
        return StaticMatchResult(
            applicable=False,
            reason_skipped=(
                f"{wildcard.describe()} uses MPI_ANY_SOURCE with no "
                "observed match; the sequential model only covers "
                "deterministic matchings — use `repro verify` for "
                "wildcard-aware match-set exploration"
            ),
            skipped_check="wildcard-unsupported",
            fragment="UNDECIDABLE",
        )

    replay = _Replay(sequences, comms)
    steps = 0
    progress = True
    while progress:
        progress = False
        for rank in range(replay.p):
            while replay.pc[rank] < len(sequences[rank]):
                steps += 1
                if steps > max_steps:
                    return StaticMatchResult(
                        applicable=False,
                        reason_skipped="replay exceeded step budget",
                    )
                if replay.try_advance(rank):
                    progress = True
                else:
                    break

    blocked = {
        rank: sequences[rank][replay.pc[rank]]
        for rank in range(replay.p)
        if replay.pc[rank] < len(sequences[rank])
    }
    finished = {
        rank for rank in range(replay.p) if rank not in blocked
    } | replay.finished
    finished -= set(blocked)
    if not blocked:
        return StaticMatchResult(
            applicable=True,
            finished=finished,
            fragment="SEQ-DETERMINISTIC",
        )

    conditions = [replay.blocked_condition(rank) for rank in sorted(blocked)]
    graph = WaitForGraph.from_conditions(
        replay.p, conditions, finished=finished
    )
    detection = detect_deadlock(graph)
    return StaticMatchResult(
        applicable=True,
        deadlocked=detection.deadlocked,
        witness_cycle=detection.witness_cycle,
        blocked_ops=blocked,
        finished=finished,
        graph=graph,
        detection=detection,
        fragment="SEQ-DETERMINISTIC",
    )
