"""End-to-end reproduction of the paper's worked examples (Figs 2, 4)."""
import pytest

from repro.core import (
    TransitionSystem,
    analyze_trace,
    detect_deadlocks_distributed,
)
from repro.mpi.blocking import BlockingSemantics
from repro.workloads import (
    fig2a_programs,
    fig2b_programs,
    fig4_programs,
    head_to_head_sendrecv_programs,
    waitall_deadlock_programs,
    waitany_survivor_programs,
)
from tests.conftest import run_relaxed, run_strict


class TestFig2aRecvRecv:
    """Figure 2(a): manifests under every MPI implementation."""

    @pytest.mark.parametrize("semantics", ["strict", "relaxed"])
    def test_manifests_under_both_semantics(self, semantics):
        run = run_strict if semantics == "strict" else run_relaxed
        res = run(fig2a_programs())
        assert res.deadlocked
        assert set(res.hung) == {0, 1}

    def test_centralized_detection_with_cycle(self):
        res = run_relaxed(fig2a_programs())
        analysis = analyze_trace(res.matched)
        assert analysis.deadlocked == (0, 1)
        assert set(analysis.detection.witness_cycle) == {0, 1}
        assert "MPI_Recv" in analysis.html_report

    @pytest.mark.parametrize("fan_in", [2, 4])
    def test_distributed_detection(self, fan_in):
        res = run_relaxed(fig2a_programs())
        out = detect_deadlocks_distributed(res.matched, fan_in=fan_in)
        assert out.deadlocked == (0, 1)


class TestFig2bSendSend:
    """Figure 2(b): unsafe program, masked by buffering."""

    def test_relaxed_run_completes_strict_run_hangs(self):
        assert not run_relaxed(fig2b_programs(), seed=3).deadlocked
        assert run_strict(fig2b_programs(), seed=3).deadlocked

    def test_detected_from_completed_run(self):
        """The tool's core value: flags the potential deadlock even
        though this execution finished."""
        res = run_relaxed(fig2b_programs(), seed=3)
        analysis = analyze_trace(res.matched)
        assert analysis.deadlocked == (0, 1, 2)
        # Terminal state (2, 3, 2): the post-barrier sends (Figure 3).
        assert analysis.terminal_state == (2, 3, 2)
        for rank in range(3):
            op = res.trace.op((rank, analysis.terminal_state[rank]))
            assert op.is_send()

    def test_distributed_agrees_across_seeds_and_fanins(self):
        res = run_relaxed(fig2b_programs(), seed=3)
        for fan_in in (2, 3):
            for seed in range(4):
                out = detect_deadlocks_distributed(
                    res.matched, fan_in=fan_in, seed=seed
                )
                assert out.stable_state == (2, 3, 2)
                assert out.deadlocked == (0, 1, 2)

    def test_relaxed_analysis_semantics_accepts_the_run(self):
        """Section 3.3: with b adapted to a buffering implementation,
        the same trace has no deadlock."""
        res = run_relaxed(fig2b_programs(), seed=3)
        analysis = analyze_trace(
            res.matched, semantics=BlockingSemantics.relaxed()
        )
        assert not analysis.has_deadlock


class TestFig4UnexpectedMatch:
    def _unexpected_seed(self):
        for seed in range(60):
            res = run_relaxed(fig4_programs(), seed=seed)
            if res.deadlocked:
                continue
            if res.matched.send_of.get((1, 0)) == (2, 1):
                return res
        pytest.fail("no interleaving produced the Figure 4 match")

    def test_strict_analysis_stalls_and_flags(self):
        res = self._unexpected_seed()
        ts = TransitionSystem(res.matched)
        terminal = ts.run()
        assert terminal == (0, 0, 0)  # cannot advance past initial state
        unexpected = ts.find_unexpected_matches(terminal)
        assert len(unexpected) == 1
        um = unexpected[0]
        assert um.receive == (1, 0)
        assert um.candidate_send == (0, 0)
        assert um.matched_send == (2, 1)

    def test_adapted_semantics_resolves_the_trace(self):
        """The paper's remedy: adapt b to the implementation's choices."""
        res = self._unexpected_seed()
        relaxed_ts = TransitionSystem(
            res.matched, semantics=BlockingSemantics.relaxed()
        )
        term = relaxed_ts.run()
        assert not relaxed_ts.blocked_processes(term)

    def test_report_lists_unexpected_matches(self):
        res = self._unexpected_seed()
        analysis = analyze_trace(res.matched)
        assert analysis.unexpected_matches
        assert "Unexpected matches" in analysis.html_report

    def test_expected_interleavings_are_clean(self):
        for seed in range(60):
            res = run_relaxed(fig4_programs(), seed=seed)
            if res.deadlocked or res.matched.send_of.get((1, 0)) == (2, 1):
                continue
            analysis = analyze_trace(res.matched, generate_outputs=False)
            assert not analysis.has_deadlock
            assert not analysis.unexpected_matches


class TestCompletionExamples:
    def test_waitall_deadlock_detected_everywhere(self):
        res = run_relaxed(waitall_deadlock_programs())
        assert res.deadlocked  # manifests: tag 2 never sent
        analysis = analyze_trace(res.matched)
        assert analysis.has_deadlock
        out = detect_deadlocks_distributed(res.matched, fan_in=2)
        assert out.has_deadlock
        assert set(out.deadlocked) == set(analysis.deadlocked)

    def test_waitany_survivor_is_clean(self):
        res = run_relaxed(waitany_survivor_programs())
        assert not res.deadlocked
        assert not analyze_trace(res.matched).has_deadlock
        assert not detect_deadlocks_distributed(
            res.matched, fan_in=2
        ).has_deadlock

    def test_sendrecv_head_to_head_is_safe(self):
        res = run_strict(head_to_head_sendrecv_programs(6))
        assert not res.deadlocked
        assert not analyze_trace(res.matched).has_deadlock
