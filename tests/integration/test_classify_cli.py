"""``repro classify`` and the ``repro verify`` fast path, end to end."""
import json

import pytest

from repro.analysis import verify_path
from repro.cli import main
from repro.obs.metrics import MetricsRegistry

DETERMINISTIC_MODULE = '''\
"""Wildcard-free programs: a deadlocking ring and a clean exchange."""


def ring(rank):
    right = (rank.rank + 1) % rank.size
    left = (rank.rank - 1) % rank.size
    yield rank.send(right, tag=0)
    yield rank.recv(source=left, tag=0)
    yield rank.finalize()


def exchange(rank):
    right = (rank.rank + 1) % rank.size
    left = (rank.rank - 1) % rank.size
    s = yield rank.isend(right, tag=1)
    r = yield rank.irecv(source=left, tag=1)
    yield rank.waitall([s, r])
    yield rank.finalize()
'''

MIXED_MODULE = '''\
"""One program per fragment label."""
from repro.mpi.constants import ANY_SOURCE


def deterministic(rank):
    peer = (rank.rank + 1) % rank.size
    yield rank.send(peer, tag=0)
    yield rank.recv(source=(rank.rank - 1) % rank.size, tag=0)
    yield rank.finalize()


def master(rank):
    if rank.rank == 0:
        for w in range(1, rank.size):
            yield rank.recv(source=w, tag=7)
    else:
        yield rank.send(0, tag=7)
    yield rank.finalize()


def wildcard(rank):
    yield rank.recv(source=ANY_SOURCE, tag=0)
    yield rank.finalize()
'''


# ----------------------------------------------------------------------
# repro classify
# ----------------------------------------------------------------------

def test_classify_labels_every_fragment(tmp_path, capsys):
    path = tmp_path / "mixed.py"
    path.write_text(MIXED_MODULE)
    code = main(["classify", str(path)])
    out = capsys.readouterr().out
    assert code == 1  # the wildcard program is undecidable
    assert "deterministic: SEQ-DETERMINISTIC" in out
    assert "master: SEQ-WILDCARD-FREE-LOOPS" in out
    assert "wildcard: UNDECIDABLE" in out
    assert "ANY_SOURCE" in out
    # Provenance: role split and symbolic loop with file:line anchors.
    assert "role split: rank == 0" in out
    assert "symbolic loop: repeat size - 1 times" in out


def test_classify_all_decidable_exits_zero(tmp_path, capsys):
    path = tmp_path / "det.py"
    path.write_text(DETERMINISTIC_MODULE)
    code = main(["classify", str(path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "ring: SEQ-DETERMINISTIC" in out
    assert "exchange: SEQ-DETERMINISTIC" in out


def test_classify_json_document(tmp_path, capsys):
    src = tmp_path / "mixed.py"
    src.write_text(MIXED_MODULE)
    out_file = tmp_path / "cls.json"
    main(["classify", str(src), "--out", str(out_file)])
    capsys.readouterr()
    doc = json.loads(out_file.read_text())
    assert doc["format"] == "repro-classify/1"
    programs = {p["program"]: p for p in doc["programs"][str(src)]}
    assert programs["deterministic"]["fragment"] == "SEQ-DETERMINISTIC"
    assert programs["master"]["fragment"] == "SEQ-WILDCARD-FREE-LOOPS"
    assert programs["master"]["role_splits"][0]["condition"] == "rank == 0"
    assert programs["wildcard"]["fragment"] == "UNDECIDABLE"
    assert programs["wildcard"]["line"] is not None


def test_classify_verbose_renders_term_trees(tmp_path, capsys):
    path = tmp_path / "det.py"
    path.write_text(DETERMINISTIC_MODULE)
    main(["classify", str(path), "-v"])
    out = capsys.readouterr().out
    assert "term tree:" in out


def test_examples_match_the_golden_term_trees(tmp_path, capsys, monkeypatch):
    """Regression gate for ``render_terms``: the symbolic term trees
    of every example are pinned, so a rendering or extraction change
    shows up as a golden diff instead of silent drift."""
    from pathlib import Path

    repo_root = Path(__file__).resolve().parents[2]
    golden = repo_root / "tests" / "golden" / "classify_examples.json"
    examples = sorted(
        str(p.relative_to(repo_root))
        for p in (repo_root / "examples").glob("*.py")
    )
    monkeypatch.chdir(repo_root)
    out_json = tmp_path / "classify.json"
    code = main(["classify", *examples, "-v", "--out", str(out_json)])
    assert code == 1  # the wildcard examples stay UNDECIDABLE
    got = json.loads(out_json.read_text())
    want = json.loads(golden.read_text())
    assert got == want


def test_golden_term_trees_say_what_we_think_they_say():
    from pathlib import Path

    repo_root = Path(__file__).resolve().parents[2]
    golden = repo_root / "tests" / "golden" / "classify_examples.json"
    doc = json.loads(golden.read_text())
    programs = doc["programs"]
    parity = programs["examples/parity_exchange.py"][0]
    assert parity["fragment"] == "SEQ-DETERMINISTIC"
    # The role split and both branch arms render into the term tree.
    terms = "\n".join(parity["terms"])
    assert "(rank + 1) % size" in terms
    assert "(rank - 1) % size" in terms
    assert "allreduce" in terms
    storm = programs["examples/wildcard_storm.py"][0]
    assert storm["fragment"] == "UNDECIDABLE"
    assert any("ANY" in line for line in storm["terms"])
    lammps = programs["examples/lammps_potential_deadlock.py"][0]
    assert any("repeat" in line for line in lammps["terms"]) or len(
        lammps["terms"]
    ) >= 10  # const-unrolled iterations render flat


def test_classify_unreadable_path_exits_two(capsys):
    assert main(["classify", "does/not/exist.py"]) == 2


def test_classify_syntax_error_exits_two(tmp_path, capsys):
    path = tmp_path / "bad.py"
    path.write_text("def broken(:\n")
    assert main(["classify", str(path)]) == 2
    assert "does not parse" in capsys.readouterr().err


# ----------------------------------------------------------------------
# The verify fast path
# ----------------------------------------------------------------------

def test_fastpath_skips_the_state_graph_and_counts_it(tmp_path):
    path = tmp_path / "det.py"
    path.write_text(DETERMINISTIC_MODULE)
    metrics = MetricsRegistry()
    report = verify_path(str(path), ranks=4, metrics=metrics)
    by_label = {p.label: p for p in report.programs}
    ring = by_label["ring"].result
    assert ring is not None and ring.has_deadlock
    assert ring.fragment == "SEQ-DETERMINISTIC"
    # The acceptance claim: no state graph was ever built.
    assert ring.stats.states_explored == 0
    exchange = by_label["exchange"].result
    assert exchange is not None and not exchange.has_deadlock
    assert exchange.stats.states_explored == 0
    counters = metrics.snapshot()["counters"]
    assert counters["verify.fastpath.hits"] == 2
    assert counters.get("verify.fastpath.misses", 0) == 0
    assert counters["verify.fastpath.linear_ops"] > 0
    assert counters["verify.fastpath.deadlocks_found"] == 1
    assert counters["verify.fragment.SEQ-DETERMINISTIC"] == 2


def test_no_fastpath_reproduces_the_same_verdicts(tmp_path):
    path = tmp_path / "det.py"
    path.write_text(DETERMINISTIC_MODULE)
    metrics = MetricsRegistry()
    fast = verify_path(str(path), ranks=4)
    slow = verify_path(str(path), ranks=4, fastpath=False,
                       metrics=metrics)
    for f, s in zip(fast.programs, slow.programs):
        assert f.label == s.label
        assert f.verdict_name == s.verdict_name
        assert f.result is not None and s.result is not None
        assert sorted(f.result.deadlocked) == sorted(s.result.deadlocked)
        # Forced exploration really explored.
        assert s.result.stats.states_explored > 0
        assert s.result.fragment == ""
    counters = metrics.snapshot()["counters"]
    assert "verify.fastpath.hits" not in counters


def test_fastpath_witness_survives_replay(tmp_path, capsys):
    path = tmp_path / "det.py"
    path.write_text(DETERMINISTIC_MODULE)
    code = main(["verify", str(path), "-n", "4", "--replay"])
    out = capsys.readouterr().out
    assert code == 1
    assert "fast path: SEQ-DETERMINISTIC" in out
    assert "replay: confirmed runtime deadlock" in out


def test_wildcard_program_misses_the_fastpath(tmp_path):
    path = tmp_path / "mixed.py"
    path.write_text(MIXED_MODULE)
    metrics = MetricsRegistry()
    report = verify_path(str(path), ranks=3, metrics=metrics)
    counters = metrics.snapshot()["counters"]
    assert counters["verify.fastpath.misses"] >= 1
    assert counters["verify.fragment.UNDECIDABLE"] >= 1
    by_label = {p.label: p for p in report.programs}
    wc = by_label["wildcard"].result
    assert wc is not None and wc.fragment == ""
    assert wc.stats.states_explored > 0


def test_obs_summary_renders_the_classification_table(tmp_path, capsys):
    path = tmp_path / "det.py"
    path.write_text(DETERMINISTIC_MODULE)
    main(["verify", str(path), "-n", "4", "--obs"])
    out = capsys.readouterr().out
    assert "decidable-fragment classification" in out
    assert "fast-path hit rate" in out
