"""DistributedDeadlockDetector facade behaviours and report artifacts."""
import pytest

from repro.core.detector import (
    DistributedDeadlockDetector,
    DistributedOutcome,
    detect_deadlocks_distributed,
)
from repro.workloads import build_stress_trace, build_wildcard_trace
from repro.workloads.micro import fig2a_programs
from tests.conftest import run_relaxed


class TestOutcomeSurface:
    def test_outcome_without_detection_raises(self):
        matched = build_stress_trace(4, iterations=4)
        detector = DistributedDeadlockDetector(matched, fan_in=2)
        out = detector.run(detect_at_end=False)
        assert isinstance(out, DistributedOutcome)
        with pytest.raises(ValueError):
            _ = out.detection
        assert out.deadlocked == ()
        assert not out.has_deadlock

    def test_simulated_time_and_traffic_accounting(self):
        matched = build_stress_trace(4, iterations=8)
        out = detect_deadlocks_distributed(matched, fan_in=2)
        assert out.simulated_seconds > 0
        assert out.bytes_sent > 0
        assert out.messages_sent > matched.trace.total_ops()

    def test_generate_outputs_false_skips_reports(self):
        matched = build_wildcard_trace(6)
        out = detect_deadlocks_distributed(
            matched, fan_in=2, generate_outputs=False
        )
        record = out.detection
        assert record.has_deadlock
        assert record.dot_text is None
        assert record.html_report is None
        # Detection facts are still complete.
        assert record.result.deadlocked == tuple(range(6))

    def test_report_artifacts_well_formed(self):
        res = run_relaxed(fig2a_programs())
        out = detect_deadlocks_distributed(res.matched, fan_in=2)
        record = out.detection
        assert record.dot_text.startswith("digraph")
        assert record.dot_text.rstrip().endswith("}")
        html = record.html_report
        assert html.startswith("<!DOCTYPE html>")
        assert "Deadlock detected" in html
        assert "MPI_Recv" in html

    def test_phase_timers_cover_all_groups(self):
        matched = build_wildcard_trace(8)
        out = detect_deadlocks_distributed(matched, fan_in=2)
        breakdown = out.detection.timers.breakdown()
        for phase in (
            "synchronization",
            "wfg_gather",
            "graph_build",
            "deadlock_check",
            "output_generation",
        ):
            assert phase in breakdown
            assert breakdown[phase] >= 0

    def test_detection_record_timestamps_ordered(self):
        matched = build_wildcard_trace(6)
        detector = DistributedDeadlockDetector(matched, fan_in=2)
        out = detector.run()
        record = out.detection
        assert record.requested_at <= record.consistent_at
        assert record.consistent_at <= record.gathered_at


class TestTopologyChoices:
    @pytest.mark.parametrize("fan_in", [2, 3, 4, 8, 16])
    def test_any_fanin_same_verdict(self, fan_in):
        matched = build_wildcard_trace(10)
        out = detect_deadlocks_distributed(matched, fan_in=fan_in)
        assert out.deadlocked == tuple(range(10))

    def test_single_rank_per_node(self):
        """fan_in larger than p: one first-layer node, dedicated root."""
        matched = build_stress_trace(3, iterations=4)
        out = detect_deadlocks_distributed(matched, fan_in=16)
        assert len(out.topology.first_layer) == 1
        assert not out.has_deadlock
