"""``repro blame``: live mode, artifact mode, and malformed input."""
import json

from repro.cli import main

LAMMPS = "examples/lammps_potential_deadlock.py"


def test_blame_live_lammps_agrees_with_runtime_wfg(tmp_path, capsys):
    out_json = tmp_path / "blame.json"
    code = main(["blame", LAMMPS, "--out", str(out_json), "--format", "json"])
    out = capsys.readouterr().out
    assert code == 1
    assert "blame verdict: deadlock rooted at ranks" in out
    assert "root causes match the runtime deadlocked set" in out
    assert "-- blame chain (witness cycle) --" in out
    assert "-- critical path --" in out
    assert "-- unified timeline --" in out

    doc = json.loads(out_json.read_text())
    assert doc["format"] == "repro-blame/1"
    assert doc["deadlock"] is True
    # The lammps ring deadlocks all 12 ranks, and the acceptance bar:
    # >= 90% of blocked time lands on the reported root causes.
    assert doc["root_causes"] == list(range(12))
    assert doc["runtime_agreement"] is True
    assert doc["runtime_deadlocked"] == doc["root_causes"]
    assert doc["attributed_ratio"] >= 0.9
    assert doc["total_blocked_us"] > 0
    assert len(doc["blame_chain"]) == 12
    assert len(doc["critical_path"]) == 12
    assert doc["num_ranks"] == 12
    assert any(iv["terminal"] for iv in doc["intervals"])
    assert [row["clock"] for row in doc["timeline"]] == [
        "wall", "simulated",
    ]


def test_blame_artifact_chrome_trace_roundtrip(tmp_path, capsys):
    trace = tmp_path / "run.trace.json"
    code = main([
        "demo", "lammps", "-n", "12", "--obs-trace", str(trace),
    ])
    capsys.readouterr()
    assert code == 1

    out_json = tmp_path / "blame.json"
    code = main(["blame", str(trace), "--out", str(out_json), "--format", "json"])
    out = capsys.readouterr().out
    assert code == 1
    assert "deadlock rooted at ranks" in out
    doc = json.loads(out_json.read_text())
    assert doc["deadlock"] is True
    assert doc["attributed_ratio"] >= 0.9
    # Artifact mode has no live runtime to cross-check against.
    assert "runtime_agreement" not in doc


def test_blame_artifact_jsonl_roundtrip(tmp_path, capsys):
    jsonl = tmp_path / "run.events.jsonl"
    code = main([
        "demo", "lammps", "-n", "12", "--out", str(jsonl), "--format", "jsonl",
    ])
    capsys.readouterr()
    assert code == 1
    code = main(["blame", str(jsonl)])
    out = capsys.readouterr().out
    assert code == 1
    assert "deadlock rooted at ranks" in out


def test_blame_clean_run_exits_zero(tmp_path, capsys):
    trace = tmp_path / "run.trace.json"
    code = main(["demo", "stress", "-n", "4", "--obs-trace", str(trace)])
    capsys.readouterr()
    assert code == 0
    code = main(["blame", str(trace)])
    out = capsys.readouterr().out
    assert code == 0
    assert "no deadlock" in out


def test_deadlock_report_json_embeds_flight_tails(tmp_path, capsys):
    report_json = tmp_path / "report.json"
    code = main([
        "demo", "lammps", "-n", "12", "--out", str(report_json), "--format", "json",
    ])
    capsys.readouterr()
    assert code == 1
    doc = json.loads(report_json.read_text())
    assert doc["format"] == "repro-deadlock-report/1"
    assert doc["deadlocked"] == list(range(12))
    assert len(doc["blame_chain"]) == 12
    # One flight tail per deadlocked rank, ending at the detection cut.
    assert sorted(doc["flight_tails"], key=int) == [
        str(r) for r in range(12)
    ]
    for tail in doc["flight_tails"].values():
        assert tail, "flight tail must not be empty"
        assert tail[-1]["event"] == "blocked@detection"


def test_deadlock_report_html_embeds_flight_tails(tmp_path, capsys):
    report = tmp_path / "report.html"
    code = main(["demo", "lammps", "-n", "12", "--report", str(report)])
    capsys.readouterr()
    assert code == 1
    html = report.read_text()
    assert "Blame chain" in html
    assert "Flight recorder" in html
    assert "blocked@detection" in html


class TestMalformedInput:
    def test_stats_corrupt_jsonl_names_the_line(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"name": "a", "ph": "i", "ts": 1}\n{oops\n')
        code = main(["stats", str(bad)])
        err = capsys.readouterr().err
        assert code == 2
        assert f"{bad}:2" in err
        assert "malformed event record" in err

    def test_blame_corrupt_jsonl_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        code = main(["blame", str(bad)])
        err = capsys.readouterr().err
        assert code == 2
        assert "malformed event record" in err

    def test_blame_jsonl_non_object_line_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("[1, 2, 3]\n")
        code = main(["blame", str(bad)])
        assert code == 2

    def test_blame_truncated_chrome_doc_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [')
        code = main(["blame", str(bad)])
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot analyze" in err

    def test_stats_truncated_chrome_doc_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [')
        code = main(["stats", str(bad)])
        assert code == 2

    def test_blame_missing_file_exits_two(self, tmp_path, capsys):
        code = main(["blame", str(tmp_path / "nope.json")])
        assert code == 2

    def test_blame_python_file_without_programs(self, tmp_path, capsys):
        src = tmp_path / "empty.py"
        src.write_text("X = 1\n")
        code = main(["blame", str(src)])
        err = capsys.readouterr().err
        assert code == 2
        assert "no rank programs" in err
