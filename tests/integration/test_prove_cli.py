"""``repro prove`` end to end: exit codes, JSON, witnesses, and the
``--prove`` riders on ``classify``/``verify``."""
import json
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

PROVABLE_MODULE = '''\
"""Parity-split exchange: deadlock-free at every size."""


def parity(rank):
    right = (rank.rank + 1) % rank.size
    left = (rank.rank - 1) % rank.size
    if rank.rank % 2 == 0:
        yield rank.send(dest=right, tag=0)
        yield rank.recv(source=left, tag=0)
    else:
        yield rank.recv(source=left, tag=0)
        yield rank.send(dest=right, tag=0)
    yield rank.finalize()
'''

REFUTABLE_MODULE = '''\
"""All-send-first above p=6: the minimal failing count is 6."""


def guarded_ring(rank):
    nxt = (rank.rank + 1) % rank.size
    prv = (rank.rank - 1) % rank.size
    if rank.size >= 6:
        yield rank.send(dest=nxt, tag=0)
        yield rank.recv(source=prv, tag=0)
    else:
        if rank.rank % 2 == 0:
            yield rank.send(dest=nxt, tag=0)
            yield rank.recv(source=prv, tag=0)
        else:
            yield rank.recv(source=prv, tag=0)
            yield rank.send(dest=nxt, tag=0)
    yield rank.finalize()
'''

WILDCARD_MODULE = '''\
"""Wildcard receive: honestly outside the provable fragment."""
from repro.mpi.constants import ANY_SOURCE


def storm(rank):
    yield rank.recv(source=ANY_SOURCE, tag=0)
    yield rank.finalize()
'''


def test_proved_module_exits_zero(tmp_path, capsys):
    path = tmp_path / "parity.py"
    path.write_text(PROVABLE_MODULE)
    code = main(["prove", str(path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "PROVED-ALL-P" in out
    assert "deadlock-free for all p >= 2" in out


def test_refuted_module_exits_one_with_minimal_p(tmp_path, capsys):
    path = tmp_path / "ring.py"
    path.write_text(REFUTABLE_MODULE)
    code = main(["prove", str(path)])
    out = capsys.readouterr().out
    assert code == 1
    assert "REFUTED" in out
    assert "minimal failing p=6" in out


def test_wildcard_module_exits_two(tmp_path, capsys):
    path = tmp_path / "storm.py"
    path.write_text(WILDCARD_MODULE)
    code = main(["prove", str(path)])
    out = capsys.readouterr().out
    assert code == 2
    assert "UNDECIDABLE" in out


def test_refuted_dominates_unknown_in_the_exit_code(tmp_path, capsys):
    proved = tmp_path / "parity.py"
    proved.write_text(PROVABLE_MODULE)
    refuted = tmp_path / "ring.py"
    refuted.write_text(REFUTABLE_MODULE)
    wildcard = tmp_path / "storm.py"
    wildcard.write_text(WILDCARD_MODULE)
    code = main(["prove", str(proved), str(wildcard), str(refuted)])
    assert code == 1


def test_missing_path_is_a_usage_error(capsys):
    assert main(["prove", "does/not/exist.py"]) == 2


def test_syntax_error_exits_two(tmp_path, capsys):
    path = tmp_path / "bad.py"
    path.write_text("def broken(:\n")
    assert main(["prove", str(path)]) == 2
    assert "does not parse" in capsys.readouterr().err


def test_json_document_and_witness_dir(tmp_path, capsys):
    parity = tmp_path / "parity.py"
    parity.write_text(PROVABLE_MODULE)
    ring = tmp_path / "ring.py"
    ring.write_text(REFUTABLE_MODULE)
    out_json = tmp_path / "prove.json"
    wdir = tmp_path / "witnesses"
    code = main(
        ["prove", str(parity), str(ring),
         "--out", str(out_json), "--witness-dir", str(wdir)]
    )
    assert code == 1
    doc = json.loads(out_json.read_text())
    assert doc["format"] == "repro-prove/1"
    proved = doc["results"][str(parity)][0]
    assert proved["verdict"] == "PROVED-ALL-P"
    assert proved["certificate"]["window"][0] == 2
    assert proved["certificate"]["channels"]
    refuted = doc["results"][str(ring)][0]
    assert refuted["verdict"] == "REFUTED"
    assert refuted["min_p"] == 6
    assert refuted["witness"]["schedule"]
    # The witness was also archived as a replayable artifact.
    files = list(wdir.glob("*.witness.json"))
    assert len(files) == 1
    data = json.loads(files[0].read_text())
    assert data["format"] == "repro-witness/1"


def test_verbose_prints_the_channel_certificate(tmp_path, capsys):
    path = tmp_path / "parity.py"
    path.write_text(PROVABLE_MODULE)
    code = main(["prove", str(path), "-v"])
    out = capsys.readouterr().out
    assert code == 0
    assert "always-matched" in out


def test_obs_summary_renders_the_proof_table(tmp_path, capsys):
    path = tmp_path / "parity.py"
    path.write_text(PROVABLE_MODULE)
    main(["prove", str(path), "--obs"])
    out = capsys.readouterr().out
    assert "parameterized proof (repro prove)" in out
    assert "PROVED-ALL-P" in out


# ----------------------------------------------------------------------
# --prove riders
# ----------------------------------------------------------------------

def test_classify_prove_prints_and_reports_verdicts(tmp_path, capsys):
    path = tmp_path / "parity.py"
    path.write_text(PROVABLE_MODULE)
    out_json = tmp_path / "cls.json"
    code = main(["classify", str(path), "--prove", "--out", str(out_json)])
    out = capsys.readouterr().out
    assert code == 0
    assert "prove: " in out and "PROVED-ALL-P" in out
    doc = json.loads(out_json.read_text())
    entry = doc["programs"][str(path)][0]
    assert entry["prove"]["verdict"] == "PROVED-ALL-P"


def test_classify_prove_folds_refutation_into_the_exit_code(
    tmp_path, capsys
):
    path = tmp_path / "ring.py"
    path.write_text(REFUTABLE_MODULE)
    code = main(["classify", str(path), "--prove"])
    out = capsys.readouterr().out
    assert code == 1
    assert "minimal failing p=6" in out


def test_verify_prove_appends_parameterized_verdicts(tmp_path, capsys):
    path = tmp_path / "ring.py"
    path.write_text(REFUTABLE_MODULE)
    out_json = tmp_path / "verify.json"
    # At p=4 the guarded ring is clean; only the prover sees p=6.
    code = main(
        ["verify", str(path), "-n", "4", "--prove",
         "--out", str(out_json), "--format", "json"]
    )
    out = capsys.readouterr().out
    assert code == 1  # the refutation folds into the exit code
    assert "prove guarded_ring: " in out
    assert "minimal failing p=6" in out
    doc = json.loads(out_json.read_text())
    assert doc["results"][str(path)]["guarded_ring"]["prove"][
        "min_p"
    ] == 6


def test_verify_prove_on_a_provable_module_stays_clean(tmp_path, capsys):
    path = tmp_path / "parity.py"
    path.write_text(PROVABLE_MODULE)
    code = main(["verify", str(path), "-n", "4", "--prove"])
    out = capsys.readouterr().out
    assert code == 0
    assert "PROVED-ALL-P" in out
