"""``repro watch`` end to end: live runs, feed replay, stats integration."""
import json
from pathlib import Path

from repro.cli import main
from repro.obs import LIVE_FORMAT, load_live_feed

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def test_watch_soft_hang_workload_exits_zero(capsys):
    code = main(["watch", "soft-hang", "-n", "8", "--every", "64"])
    out = capsys.readouterr().out
    assert code == 0
    assert "SOFT-HANG" in out  # mid-run windows flag the straggler
    assert "final verdict: PROGRESSING" in out


def test_watch_straggler_collective_never_deadlock(capsys):
    code = main(["watch", "straggler", "-n", "8", "--every", "64"])
    out = capsys.readouterr().out
    assert code in (0, 1)
    assert "DEADLOCK-CONFIRMED" not in out


def test_watch_deadlock_workload_exits_two(capsys):
    code = main(["watch", "fig2a", "-n", "2"])
    out = capsys.readouterr().out
    assert code == 2
    assert "final verdict: DEADLOCK-CONFIRMED" in out
    assert "roots" in out


def test_watch_python_file_target(capsys):
    code = main([
        "watch", str(EXAMPLES / "soft_hang_imbalance.py"), "--every", "64",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "final verdict: PROGRESSING" in out


def test_watch_writes_feed_and_openmetrics(tmp_path, capsys):
    feed = tmp_path / "feed.jsonl"
    om = tmp_path / "metrics.prom"
    code = main([
        "watch", "fig2a", "-n", "2",
        "--out", str(feed), "--format", "jsonl",
        "--openmetrics", str(om),
    ])
    capsys.readouterr()
    assert code == 2
    header, snapshots, final = load_live_feed(str(feed))
    assert header["format"] == LIVE_FORMAT
    assert snapshots  # at least the terminal engine tick
    assert final["verdict"]["state"] == "DEADLOCK-CONFIRMED"
    text = om.read_text()
    assert "repro_health_state 2" in text
    assert text.endswith("# EOF\n")


def test_watch_json_summary(tmp_path, capsys):
    out = tmp_path / "summary.json"
    code = main([
        "watch", "soft-hang", "-n", "8", "--every", "64",
        "--out", str(out), "--format", "json",
    ])
    capsys.readouterr()
    assert code == 0
    doc = json.loads(out.read_text())
    assert doc["format"] == LIVE_FORMAT
    assert doc["kind"] == "summary"
    assert doc["verdict"]["state"] == "PROGRESSING"
    assert doc["windows"] > 0


def test_watch_replays_a_recorded_feed(tmp_path, capsys):
    feed = tmp_path / "feed.jsonl"
    assert main([
        "watch", "fig2a", "-n", "2",
        "--out", str(feed), "--format", "jsonl",
    ]) == 2
    capsys.readouterr()
    code = main(["watch", str(feed)])
    out = capsys.readouterr().out
    assert code == 2
    assert "health timeline" in out
    assert "DEADLOCK-CONFIRMED" in out


def test_watch_sharded_backend_emits_backend_windows(tmp_path, capsys):
    feed = tmp_path / "feed.jsonl"
    code = main([
        "watch", "stress", "-n", "16",
        "--backend", "sharded", "--shards", "4",
        "--every-rounds", "1",
        "--out", str(feed), "--format", "jsonl",
    ])
    capsys.readouterr()
    assert code == 0
    _, snapshots, final = load_live_feed(str(feed))
    phases = {doc["phase"] for doc in snapshots}
    assert "backend" in phases
    assert final["verdict"]["state"] == "PROGRESSING"


def test_watch_usage_errors_exit_two(capsys):
    assert main(["watch", "no-such-workload"]) == 2
    assert main(["watch", str(EXAMPLES / "missing.py")]) == 2
    capsys.readouterr()


def test_stats_renders_live_feed_timeline(tmp_path, capsys):
    feed = tmp_path / "feed.jsonl"
    assert main([
        "watch", "soft-hang", "-n", "8", "--every", "64",
        "--out", str(feed), "--format", "jsonl",
    ]) == 0
    capsys.readouterr()
    code = main(["stats", str(feed)])
    out = capsys.readouterr().out
    assert code == 0  # PROGRESSING feed: no deadlock finding
    assert "repro-live/1 feed" in out
    assert "health timeline" in out


def test_stats_live_feed_json_artifact(tmp_path, capsys):
    feed = tmp_path / "feed.jsonl"
    assert main([
        "watch", "fig2a", "-n", "2",
        "--out", str(feed), "--format", "jsonl",
    ]) == 2
    capsys.readouterr()
    artifact = tmp_path / "stats.json"
    code = main([
        "stats", str(feed), "--out", str(artifact), "--format", "json",
    ])
    capsys.readouterr()
    assert code == 1  # deadlock feed surfaces as a finding
    doc = json.loads(artifact.read_text())
    assert doc["live"] is True
    assert doc["verdict"]["state"] == "DEADLOCK-CONFIRMED"
