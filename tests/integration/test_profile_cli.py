"""``repro profile`` end to end: sharded run → artifact → rendering.

A sharded ``--obs-trace`` run embeds the ``repro-profile/1`` document
in the trace artifact; ``repro profile`` renders it and ``--out``
re-emits the raw JSON. Inline-backend artifacts carry no profile and
must fail with a distinct exit code, not a traceback.
"""
import json

import pytest

from repro.cli import main
from repro.obs.prof import PROFILE_FORMAT, ROUND_SECTIONS


@pytest.fixture(scope="module")
def sharded_trace(tmp_path_factory):
    """One sharded lammps run recorded with --obs-trace."""
    trace = tmp_path_factory.mktemp("prof") / "run.trace.json"
    code = main([
        "demo", "lammps", "-n", "8",
        "--backend", "sharded", "--shards", "2",
        "--obs-trace", str(trace),
    ])
    assert code == 1  # the deadlock verdict survives the sharded path
    return trace


def test_profile_renders_and_reemits_document(
    sharded_trace, tmp_path, capsys
):
    capsys.readouterr()
    out = tmp_path / "profile.json"
    code = main(["profile", str(sharded_trace), "--out", str(out)])
    rendered = capsys.readouterr().out
    assert code == 0
    assert "-- sharded run profile --" in rendered
    assert "-- per-shard totals --" in rendered
    assert "-- critical-shard timeline (per BSP round) --" in rendered
    assert "-- codec breakdown --" in rendered

    with open(out) as handle:
        doc = json.load(handle)
    assert doc["format"] == PROFILE_FORMAT
    assert doc["run"]["shards"] == 2
    assert doc["run"]["ranks"] == 8
    assert doc["run"]["rounds"] >= 1
    assert doc["critical_shard"] in (0, 1)
    assert sorted(doc["shards"]) == ["0", "1"]
    for shard in doc["shards"].values():
        assert shard["msgs_in"] > 0
        for section in ROUND_SECTIONS:
            assert shard[section + "_ms"] >= 0.0
    assert doc["codec"]["messages"] > 0
    assert doc["codec"]["bytes_in"] > 0
    # every profiled round attributes a critical shard
    for entry in doc["rounds"]:
        assert entry["critical_shard"] is not None
        assert entry["skew"] >= 1.0


def test_trace_artifact_carries_shard_spans(sharded_trace):
    with open(sharded_trace) as handle:
        doc = json.load(handle)
    cats = {e.get("cat") for e in doc["traceEvents"]}
    assert "shard.round" in cats
    assert "shard.section" in cats


def test_stats_reports_shard_workers(sharded_trace, capsys):
    capsys.readouterr()
    code = main(["stats", str(sharded_trace)])
    out = capsys.readouterr().out
    assert code == 1  # stats echoes the recorded deadlock verdict
    assert "-- shard workers (sharded backend) --" in out
    assert "s0" in out and "s1" in out


def test_profile_rejects_inline_artifact(tmp_path, capsys):
    trace = tmp_path / "inline.trace.json"
    code = main([
        "demo", "fig2a", "-n", "2", "--obs-trace", str(trace)
    ])
    assert code == 1
    capsys.readouterr()
    code = main(["profile", str(trace)])
    err = capsys.readouterr().err
    assert code == 2
    assert "no profile data" in err


def test_profile_rejects_missing_file(tmp_path, capsys):
    code = main(["profile", str(tmp_path / "nope.json")])
    err = capsys.readouterr().err
    assert code == 2
    assert "cannot load run" in err
