"""``repro verify`` end to end: exit codes, witnesses, golden verdicts."""
import json
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = sorted(
    str(p.relative_to(REPO_ROOT)) for p in (REPO_ROOT / "examples").glob("*.py")
)
GOLDEN = REPO_ROOT / "tests" / "golden" / "verify_examples.json"

CLEAN_MODULE = '''\
"""A wildcard program every matching of which completes."""
from repro.mpi.constants import ANY_SOURCE


def program(rank):
    if rank.rank == 0:
        for _ in range(rank.size - 1):
            yield rank.recv(source=ANY_SOURCE, tag=7)
    else:
        yield rank.send(0, tag=7)
    yield rank.finalize()
'''

DEADLOCK_MODULE = '''\
"""The master/worker wildcard race (see examples/)."""
from repro.workloads import wildcard_master_worker_programs

LINT_PROGRAMS = wildcard_master_worker_programs()
'''


def test_clean_program_exits_zero(tmp_path, capsys):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN_MODULE)
    code = main(["verify", str(path), "-n", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "deadlock-free" in out


def test_deadlock_possible_exits_one(tmp_path, capsys):
    path = tmp_path / "race.py"
    path.write_text(DEADLOCK_MODULE)
    code = main(["verify", str(path), "--replay"])
    out = capsys.readouterr().out
    assert code == 1
    assert "deadlock-possible" in out
    assert "replay: confirmed runtime deadlock" in out


def test_bound_exceeded_exits_two(tmp_path, capsys):
    path = tmp_path / "race.py"
    path.write_text(DEADLOCK_MODULE)
    code = main(["verify", str(path), "--max-states", "2"])
    out = capsys.readouterr().out
    assert code == 2
    assert "bound-exceeded" in out
    # The contract: a blown bound is inconclusive, never "clean".
    assert ": deadlock-free" not in out
    assert "NOT a deadlock-freedom proof" in out


def test_missing_path_is_a_usage_error(capsys):
    assert main(["verify", "does/not/exist.py"]) == 2


def test_witness_dir_archives_replayable_witnesses(tmp_path, capsys):
    path = tmp_path / "race.py"
    path.write_text(DEADLOCK_MODULE)
    wdir = tmp_path / "witnesses"
    code = main(["verify", str(path), "--witness-dir", str(wdir)])
    assert code == 1
    files = list(wdir.glob("*.witness.json"))
    assert len(files) == 1
    data = json.loads(files[0].read_text())
    assert data["format"] == "repro-witness/1"
    assert data["schedule"] == [0, 1, 0, 1, 2]


def test_examples_match_the_golden_verdicts(tmp_path, capsys, monkeypatch):
    """Regression gate: every example keeps its classification.

    Mirrors the CI ``verify-smoke`` job: tight bounds, replay on, JSON
    report compared against the checked-in golden file.
    """
    monkeypatch.chdir(REPO_ROOT)
    out_json = tmp_path / "verify.json"
    code = main(
        ["verify", *EXAMPLES, "--replay", "--max-states", "50000",
         "--out", str(out_json), "--format", "json"]
    )
    # The examples include known deadlocks, so the run reports them.
    assert code == 1
    got = json.loads(out_json.read_text())
    want = json.loads(GOLDEN.read_text())
    assert got == want


def test_golden_file_says_what_we_think_it_says():
    want = json.loads(GOLDEN.read_text())
    results = want["results"]
    lammps = results["examples/lammps_potential_deadlock.py"]
    assert lammps["lammps_halo_shift"]["verdict"] == "deadlock-possible"
    assert lammps["lammps_halo_shift"]["replay_confirmed"] is True
    mw = results["examples/wildcard_master_worker.py"]
    assert mw["LINT_PROGRAMS"]["verdict"] == "deadlock-possible"
    assert mw["LINT_PROGRAMS"]["deadlocked"] == [0, 2]
    assert mw["LINT_PROGRAMS"]["replay_confirmed"] is True
    storm = results["examples/wildcard_storm.py"]
    assert storm["wildcard_storm"]["verdict"] == "deadlock-possible"
    assert storm["wildcard_storm"]["deadlocked"] == [0, 1, 2, 3]
    assert storm["wildcard_storm"]["replay_confirmed"] is True
    parity = results["examples/parity_exchange.py"]
    assert parity["parity_exchange"]["verdict"] == "deadlock-free"
    assert parity["parity_exchange"]["fragment"] == "SEQ-DETERMINISTIC"
