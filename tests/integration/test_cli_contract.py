"""The CLI's public contract, pinned.

* every subcommand accepts the unified ``--out/--format/--backend/
  --shards`` quartet (``--format`` choices vary per command);
* the pre-1.1 spellings (``--json-out``, ``--obs-out``, ``--obs-jsonl``)
  were removed in 1.2 after their one-release alias window: passing
  one is a hard usage error (exit 2) whose message names the
  replacement, and nothing is written;
* the exit-code contract is unchanged: 0 clean, 1 deadlock/error
  finding, 2 usage error.
"""
import json

import pytest

from repro.cli import _FORMATS, build_parser, main

FIG2A = 1  # fig2a always deadlocks -> exit 1


def _parse(argv):
    return build_parser().parse_args(argv)


class TestUnifiedFlags:
    COMMAND_STUBS = {
        "record": ["record", "fig2a", "-o", "x.json"],
        "analyze": ["analyze", "t.json"],
        "demo": ["demo", "fig2a"],
        "lint": ["lint", "x.py"],
        "verify": ["verify", "x.py"],
        "stats": ["stats", "run.json"],
        "blame": ["blame", "run.json"],
        "figures": ["figures"],
    }

    @pytest.mark.parametrize("command", sorted(COMMAND_STUBS))
    def test_every_subcommand_takes_the_quartet(self, command):
        argv = self.COMMAND_STUBS[command] + [
            "--out", "artifact",
            "--format", _FORMATS[command][0],
            "--backend", "sharded",
            "--shards", "4",
        ]
        args = _parse(argv)
        assert args.out == "artifact"
        assert args.backend == "sharded"
        assert args.shards == 4

    @pytest.mark.parametrize("command", sorted(COMMAND_STUBS))
    def test_unsupported_format_is_a_usage_error(self, command):
        unsupported = [
            f for f in ("json", "jsonl", "html", "dot")
            if f not in _FORMATS[command]
        ]
        if not unsupported:
            pytest.skip("command supports every format")
        with pytest.raises(SystemExit) as excinfo:
            _parse(
                self.COMMAND_STUBS[command]
                + ["--out", "x", "--format", unsupported[0]]
            )
        assert excinfo.value.code == 2

    def test_unknown_backend_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            _parse(["demo", "fig2a", "--backend", "turbo"])
        assert excinfo.value.code == 2

    def test_out_json_writes_the_deadlock_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(["demo", "fig2a", "--out", str(out), "--format", "json"])
        assert code == FIG2A
        doc = json.loads(out.read_text())
        assert doc["deadlocked"] == [0, 1]

    def test_out_dot_and_html_route_to_the_renderers(self, tmp_path):
        dot = tmp_path / "wfg.dot"
        html = tmp_path / "report.html"
        assert main(
            ["demo", "fig2a", "--out", str(dot), "--format", "dot"]
        ) == FIG2A
        assert "digraph" in dot.read_text()
        assert main(
            ["demo", "fig2a", "--out", str(html), "--format", "html"]
        ) == FIG2A
        assert "<html" in html.read_text().lower()

    def test_out_jsonl_captures_the_event_stream(self, tmp_path):
        jsonl = tmp_path / "events.jsonl"
        assert main(
            ["demo", "fig2a", "--out", str(jsonl), "--format", "jsonl"]
        ) == FIG2A
        lines = jsonl.read_text().strip().splitlines()
        assert lines and all(json.loads(line) for line in lines)

    def test_record_accepts_out_as_the_trace_path(self, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["record", "fig2a", "--out", str(out)]) == 0
        assert json.loads(out.read_text())

    def test_record_without_any_output_is_a_usage_error(self, capsys):
        assert main(["record", "fig2a"]) == 2
        assert "output path" in capsys.readouterr().err


class TestShardedBackendFlag:
    def test_demo_sharded_reaches_the_inline_verdict(self, capsys):
        code = main(["demo", "fig2a", "--backend", "sharded", "--shards", "2"])
        assert code == FIG2A
        out = capsys.readouterr().out
        assert "deadlocked ranks (0, 1)" in out
        assert "backend sharded" in out

    def test_clean_workload_stays_exit_zero(self):
        assert main(
            ["demo", "stress", "-n", "4", "--backend", "sharded",
             "--shards", "2"]
        ) == 0

    def test_blame_live_accepts_the_backend_flag(self, tmp_path, capsys):
        prog = tmp_path / "dl.py"
        prog.write_text(
            "def worker(rank):\n"
            "    peer = 1 - rank.rank\n"
            "    yield rank.recv(source=peer)\n"
            "    yield rank.send(dest=peer)\n"
            "    yield rank.finalize()\n"
            "LINT_RANKS = 2\n"
        )
        code = main(
            ["blame", str(prog), "-n", "2", "--backend", "sharded",
             "--shards", "2"]
        )
        assert code == 1
        assert "rooted at ranks" in capsys.readouterr().out


class TestRemovedAliases:
    """The pre-1.1 alias spellings are hard errors since 1.2."""

    REPLACEMENTS = {
        "--json-out": "--out FILE --format json",
        "--obs-out": "--obs-trace FILE",
        "--obs-jsonl": "--out FILE --format jsonl",
    }

    @pytest.mark.parametrize("flag", sorted(REPLACEMENTS))
    def test_removed_flag_is_exit_2_and_writes_nothing(
        self, flag, tmp_path, capsys
    ):
        out = tmp_path / "old-artifact"
        code = main(["demo", "fig2a", flag, str(out)])
        assert code == 2
        assert not out.exists()
        err = capsys.readouterr().err
        assert f"{flag} was removed" in err
        assert self.REPLACEMENTS[flag] in err

    def test_equals_form_is_also_rejected(self, tmp_path, capsys):
        code = main(["demo", "fig2a", f"--json-out={tmp_path / 'x'}"])
        assert code == 2
        assert "--json-out was removed" in capsys.readouterr().err

    def test_new_spellings_work_without_notices(self, tmp_path, capsys):
        trace = tmp_path / "new.trace.json"
        code = main(["demo", "fig2a", "--obs-trace", str(trace)])
        assert code == FIG2A
        err = capsys.readouterr().err
        assert json.loads(trace.read_text())["traceEvents"]
        assert "deprecated" not in err and "removed" not in err


class TestUnknownFeedVersions:
    """``repro stats``/``repro watch`` diagnose a feed with an unknown
    ``repro-*`` version as a file:line usage error (exit 2), never a
    stack trace."""

    def _feed(self, tmp_path, first_line):
        feed = tmp_path / "feed.jsonl"
        feed.write_text(first_line + "\n")
        return str(feed)

    def test_stats_unsupported_version_is_exit_2(self, tmp_path, capsys):
        feed = self._feed(
            tmp_path, '{"format": "repro-live/99", "kind": "header"}'
        )
        assert main(["stats", feed]) == 2
        err = capsys.readouterr().err
        assert f"{feed}:1:" in err
        assert "unsupported repro-live/99" in err
        assert "repro-live/1" in err  # names the supported version

    def test_stats_unknown_family_is_exit_2(self, tmp_path, capsys):
        feed = self._feed(
            tmp_path, '{"format": "repro-zorp/1", "kind": "header"}'
        )
        assert main(["stats", feed]) == 2
        err = capsys.readouterr().err
        assert f"{feed}:1:" in err
        assert "unknown document family repro-zorp/1" in err

    def test_watch_unsupported_version_is_exit_2(self, tmp_path, capsys):
        feed = self._feed(
            tmp_path, '{"format": "repro-live/99", "kind": "header"}'
        )
        assert main(["watch", feed]) == 2
        err = capsys.readouterr().err
        assert f"{feed}:1:" in err
        assert "unsupported repro-live/99" in err


class TestExitCodeContract:
    def test_clean_run_is_zero(self):
        assert main(["demo", "stress", "-n", "4"]) == 0

    def test_deadlock_is_one(self):
        assert main(["demo", "fig2a"]) == 1

    def test_unknown_workload_is_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["demo", "nope"])
        assert excinfo.value.code == 2

    def test_unreadable_trace_is_two(self, tmp_path, capsys):
        missing = tmp_path / "missing.json"
        assert main(["analyze", str(missing)]) == 2
