"""The ``repro serve`` acceptance contract, end to end.

An in-process daemon (asyncio loop in a thread, ephemeral TCP port)
takes >= 8 concurrent jobs through a 2-worker pool with a per-tenant
quota of 4: every job completes with a verdict identical to an inline
``Session.run``, over-quota submissions come back as retryable
errors, the metrics endpoint reports queue depth and per-tenant
counters, and a drain leaves no orphan workers.
"""
import asyncio
import json
import threading
import time

import pytest

from repro.api import Session
from repro.serve import ReproService, ServeClient, ServeError, ServeSettings
from repro.workloads import fig2a_programs, fig2b_programs, stress_programs

#: Blocks at import time until the sentinel file appears — the lever
#: the backpressure tests use to hold worker slots deterministically.
BLOCKING_SOURCE = """\
import os
import time

while not os.path.exists({sentinel!r}):
    time.sleep(0.01)


def worker(rank):
    yield rank.finalize()


LINT_RANKS = 1
"""


def start_service(**overrides):
    defaults = dict(port=0, workers=2, quota=4, queue_limit=16)
    defaults.update(overrides)
    settings = ServeSettings(**defaults)
    service = ReproService(settings)
    ready = threading.Event()

    def run():
        async def main():
            await service.start()
            ready.set()
            await service.run_until_stopped()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "service did not start"
    assert service.address is not None
    return service, thread


@pytest.fixture()
def daemon():
    service, thread = start_service()
    try:
        yield service
    finally:
        if not service._draining:
            with ServeClient(service.address) as client:
                client.shutdown()
        thread.join(30)
        assert not thread.is_alive(), "daemon did not drain"


def test_eight_concurrent_jobs_match_inline_verdicts(daemon):
    workloads = ["fig2a", "stress", "fig2b", "stress"]
    inline = {
        "fig2a": Session().run(fig2a_programs()),
        "fig2b": Session().run(fig2b_programs()),
        "stress": Session().run(stress_programs(4, iterations=20)),
    }
    submissions = []  # (tenant, workload, job_id) per client thread
    errors = []

    def submit_batch(tenant):
        try:
            with ServeClient(daemon.address) as client:
                for name in workloads:
                    job = client.submit(
                        tenant=tenant, workload=name, ranks=4
                    )
                    submissions.append((tenant, name, job))
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=submit_batch, args=(tenant,))
        for tenant in ("alice", "bob")
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(30)
    assert not errors
    assert len(submissions) == 8

    with ServeClient(daemon.address) as client:
        for tenant, name, job_id in submissions:
            doc = client.result(job_id, wait=True, timeout=120)
            result = doc["result"]
            expected = inline[name]
            assert result["verdict"] == (
                "deadlock" if expected.has_deadlock else "clean"
            ), (tenant, name, job_id)
            assert result["deadlocked"] == list(expected.deadlocked)
        stats = client.stats()
    assert stats["jobs"]["done"] == 8
    for tenant in ("alice", "bob"):
        assert stats["tenants"][tenant]["submitted"] == 4
        assert stats["tenants"][tenant]["completed"] == 4
        assert stats["tenants"][tenant]["rejected"] == 0


def test_over_quota_submission_is_rejected_retryable(daemon, tmp_path):
    sentinel = str(tmp_path / "release")
    source = BLOCKING_SOURCE.format(sentinel=sentinel)
    with ServeClient(daemon.address) as client:
        held = [
            client.submit(tenant="hog", source=source, ranks=1)
            for _ in range(4)  # 2 running + 2 queued = the full quota
        ]
        with pytest.raises(ServeError) as excinfo:
            client.submit(tenant="hog", source=source, ranks=1)
        assert excinfo.value.code == "over-quota"
        assert excinfo.value.retryable
        assert excinfo.value.retry_after is not None
        # other tenants are unaffected by the hog's quota
        other = client.submit(tenant="polite", workload="fig2a", ranks=2)
        # queue depth is visible while jobs wait
        assert client.stats()["queue_depth"] >= 1
        (tmp_path / "release").write_text("go")
        for job_id in held:
            assert client.result(job_id, wait=True, timeout=60)[
                "result"
            ]["verdict"] == "clean"
        assert (
            client.result(other, wait=True, timeout=60)["result"]["verdict"]
            == "deadlock"
        )
        # with slots free again, the tenant is admitted
        retry = client.submit(tenant="hog", source=source, ranks=1)
        assert client.result(retry, wait=True, timeout=60)
        stats = client.stats()
    assert stats["tenants"]["hog"]["rejected"] == 1


def test_queue_backpressure(tmp_path):
    service, thread = start_service(workers=1, queue_limit=1, quota=10)
    sentinel = str(tmp_path / "release")
    source = BLOCKING_SOURCE.format(sentinel=sentinel)
    try:
        with ServeClient(service.address) as client:
            running = client.submit(tenant="t", source=source, ranks=1)
            deadline = time.time() + 10
            while client.stats()["running"] < 1:
                assert time.time() < deadline, "worker never started"
                time.sleep(0.02)
            queued = client.submit(tenant="t", source=source, ranks=1)
            with pytest.raises(ServeError) as excinfo:
                client.submit(tenant="t", source=source, ranks=1)
            assert excinfo.value.code == "queue-full"
            assert excinfo.value.retryable
            (tmp_path / "release").write_text("go")
            for job_id in (running, queued):
                client.result(job_id, wait=True, timeout=60)
            client.shutdown()
    finally:
        thread.join(30)
    assert not thread.is_alive()


def test_metrics_endpoint_reports_queue_and_tenants(daemon):
    with ServeClient(daemon.address) as client:
        job = client.submit(tenant="alice", workload="fig2a", ranks=2)
        client.result(job, wait=True, timeout=60)
        text = client.metrics()
    assert "# EOF" in text
    assert "repro_serve_queue_depth " in text
    assert "repro_serve_jobs_running " in text
    assert "repro_serve_tenant_alice_submitted_total 1" in text
    assert "repro_serve_tenant_alice_done_total 1" in text
    assert "repro_serve_quota_limit 4" in text


def test_uploaded_program_and_trace_jobs(daemon):
    from repro.mpi.serialize import matched_trace_to_dict

    deadlock_source = (
        "def worker(rank):\n"
        "    peer = 1 - rank.rank\n"
        "    yield rank.recv(source=peer)\n"
        "    yield rank.send(dest=peer)\n"
        "    yield rank.finalize()\n"
        "LINT_RANKS = 2\n"
    )
    run = Session().record(fig2a_programs())
    with ServeClient(daemon.address) as client:
        prog = client.submit(tenant="up", source=deadlock_source, ranks=2)
        trace = client.submit(
            tenant="up", trace=matched_trace_to_dict(run.matched)
        )
        verify = client.submit(
            tenant="up", source=deadlock_source, ranks=2, op="verify"
        )
        blame = client.submit(
            tenant="up", source=deadlock_source, ranks=2, op="blame"
        )
        assert (
            client.result(prog, wait=True)["result"]["deadlocked"] == [0, 1]
        )
        assert (
            client.result(trace, wait=True)["result"]["deadlocked"] == [0, 1]
        )
        verify_doc = client.result(verify, wait=True)["result"]
        assert verify_doc["programs"] == {"worker": "deadlock-possible"}
        blame_doc = client.result(blame, wait=True)["result"]
        assert blame_doc["root_causes"] == [0, 1]


def test_watch_streams_live_windows(daemon):
    with ServeClient(daemon.address) as submitter:
        job = submitter.submit(tenant="w", workload="fig2a", ranks=2)
        with ServeClient(daemon.address) as watcher:
            seen = list(watcher.watch(job))
    assert seen, "watch yielded nothing"
    final = seen[-1]
    assert "final" in final
    assert final["final"]["state"] == "done"
    assert final["final"]["result"]["verdict"] == "deadlock"
    windows = [item for item in seen if "final" not in item]
    for window in windows:
        assert window["format"] == "repro-live/1"


def test_job_failure_and_not_found(daemon):
    with ServeClient(daemon.address) as client:
        job = client.submit(tenant="e", workload="no-such-workload")
        with pytest.raises(ServeError) as excinfo:
            client.result(job, wait=True, timeout=60)
        assert excinfo.value.code == "job-failed"
        assert "unknown workload" in str(excinfo.value)
        with pytest.raises(ServeError) as missing:
            client.status("job-9999")
        assert missing.value.code == "not-found"


def test_drain_rejects_new_work_and_leaves_no_workers():
    service, thread = start_service()
    with ServeClient(service.address) as client:
        job = client.submit(tenant="d", workload="fig2a", ranks=2)
        client.result(job, wait=True, timeout=60)
        client.shutdown()
        # a submit racing the drain gets the retryable draining error
        try:
            client.submit(tenant="d", workload="fig2a", ranks=2)
        except ServeError as exc:
            assert exc.code == "draining"
            assert exc.retryable
        except Exception:
            pass  # listener may already be gone
    thread.join(30)
    assert not thread.is_alive()
    orphans = [
        t
        for t in threading.enumerate()
        if t.name.startswith("repro-serve-worker") and t.is_alive()
    ]
    assert not orphans
