"""Observability flags and the ``repro stats`` subcommand, in-process.

The deadlocking workload here must exercise the full Figure 7 protocol
(PassSend/RecvActive traffic), so the tests use ``lammps``: fig2a and
wildcard deadlock through receives alone and send no PassSend records.
"""
import json

import pytest

from repro.cli import main
from repro.obs import read_jsonl
from repro.perf.timers import ALL_PHASES


def _counter_rows(out: str) -> dict:
    """Parse the message-traffic table into {type: sent} counts."""
    counts = {}
    for line in out.splitlines():
        tokens = line.split()
        if len(tokens) == 4 and tokens[1].replace(",", "").isdigit():
            counts[tokens[0]] = int(tokens[1].replace(",", ""))
    return counts


def test_demo_obs_deadlock_counters_and_phases(capsys):
    code = main(["demo", "lammps", "-n", "8", "--obs"])
    out = capsys.readouterr().out
    assert code == 1  # deadlock verdict is preserved under --obs
    assert "observability summary" in out

    counts = _counter_rows(out)
    assert counts.get("PassSend", 0) > 0
    assert counts.get("RecvActive", 0) > 0
    assert counts.get("RecvActiveAck", 0) > 0

    # All five canonical Fig. 10(b)/11(b) phases are reported.
    for phase in ALL_PHASES:
        assert phase in out


def test_demo_obs_trace_writes_loadable_chrome_trace(tmp_path, capsys):
    trace = tmp_path / "run.trace.json"
    jsonl = tmp_path / "run.events.jsonl"
    code = main([
        "demo", "lammps", "-n", "8",
        "--obs-trace", str(trace), "--out", str(jsonl), "--format", "jsonl",
    ])
    capsys.readouterr()
    assert code == 1

    with open(trace) as handle:
        doc = json.load(handle)
    assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
    for event in doc["traceEvents"]:
        assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
    meta = doc["repro"]
    assert meta["workload"] == "lammps"
    assert meta["deadlocked"] is True
    assert meta["metrics"]["counters"]["tbon.sent.PassSend"] > 0

    events = read_jsonl(str(jsonl))
    assert events
    assert any(e.cat == "engine.op" for e in events)
    assert any(e.cat == "tbon.deliver" for e in events)


def test_stats_deadlock_run_exit_one(tmp_path, capsys):
    trace = tmp_path / "run.trace.json"
    assert main(["demo", "lammps", "-n", "8", "--obs-trace", str(trace)]) == 1
    capsys.readouterr()

    code = main(["stats", str(trace)])
    out = capsys.readouterr().out
    assert code == 1
    assert "workload=lammps" in out
    assert "deadlock" in out
    assert "PassSend" in out
    for phase in ALL_PHASES:
        assert phase in out


def test_stats_clean_run_exit_zero(tmp_path, capsys):
    trace = tmp_path / "clean.trace.json"
    assert main(["demo", "stress", "-n", "4", "--obs-trace", str(trace)]) == 0
    capsys.readouterr()

    code = main(["stats", str(trace)])
    out = capsys.readouterr().out
    assert code == 0
    assert "workload=stress" in out
    assert "verdict: clean" in out


def test_stats_missing_file_exit_two(tmp_path, capsys):
    code = main(["stats", str(tmp_path / "nope.trace.json")])
    err = capsys.readouterr().err
    assert code == 2
    assert "cannot load run" in err.lower()


def test_stats_malformed_file_exit_two(tmp_path, capsys):
    bad = tmp_path / "bad.trace.json"
    bad.write_text("{not json")
    assert main(["stats", str(bad)]) == 2
    capsys.readouterr()

    no_meta = tmp_path / "nometa.trace.json"
    no_meta.write_text('{"traceEvents": []}')
    assert main(["stats", str(no_meta)]) == 2
    capsys.readouterr()


def test_record_obs_flags(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    obs_trace = tmp_path / "record.trace.json"
    code = main([
        "record", "fig2b", "-o", str(trace), "--obs-trace", str(obs_trace),
    ])
    capsys.readouterr()
    assert code == 0
    doc = json.loads(obs_trace.read_text())
    # Recording runs only the engine: engine events, no TBON traffic.
    assert doc["repro"]["metrics"]["counters"]["engine.steps"] > 0
    assert not any(
        k.startswith("tbon.sent.")
        for k in doc["repro"]["metrics"]["counters"]
    )


def test_obs_disabled_by_default(capsys):
    code = main(["demo", "fig2a", "--fan-in", "2"])
    out = capsys.readouterr().out
    assert code == 1
    assert "observability summary" not in out
