"""The analyses across diverse communication structures."""
import pytest

from repro.core import (
    TransitionSystem,
    analyze_trace,
    detect_deadlocks_distributed,
)
from repro.core.detector import DistributedDeadlockDetector
from repro.workloads.patterns import (
    butterfly_programs,
    comm_pipeline_programs,
    deferred_deadlock_programs,
    master_worker_programs,
    software_bcast_programs,
    stencil3d_programs,
)
from tests.conftest import run_relaxed, run_strict


def _assert_clean_everywhere(res, fan_in=4, seed=0):
    assert not res.deadlocked, res.hung_descriptions()
    analysis = analyze_trace(res.matched, generate_outputs=False)
    assert not analysis.has_deadlock, analysis.conditions
    out = detect_deadlocks_distributed(
        res.matched, fan_in=fan_in, seed=seed, generate_outputs=False
    )
    assert not out.has_deadlock
    assert out.stable_state == TransitionSystem(res.matched).run()
    return out


class TestHealthyPatterns:
    @pytest.mark.parametrize("p", [4, 8, 16])
    def test_butterfly(self, p):
        res = run_strict(butterfly_programs(p), seed=p)
        _assert_clean_everywhere(res, fan_in=2)

    @pytest.mark.parametrize("seed", range(3))
    def test_master_worker_wildcards(self, seed):
        res = run_relaxed(master_worker_programs(6), seed=seed)
        _assert_clean_everywhere(res, fan_in=3, seed=seed)

    @pytest.mark.parametrize("p", [2, 5, 8, 13])
    @pytest.mark.parametrize("root", [0, 1])
    def test_software_bcast(self, p, root):
        if root >= p:
            pytest.skip("root outside world")
        res = run_strict(software_bcast_programs(p, root=root), seed=p)
        _assert_clean_everywhere(res, fan_in=2)
        # Exactly p-1 messages: a proper broadcast tree.
        assert len(res.matched.send_of) == p - 1

    def test_stencil3d(self):
        res = run_relaxed(stencil3d_programs(2, 2, 2, iterations=2), seed=3)
        _assert_clean_everywhere(res)

    def test_comm_pipeline(self):
        res = run_relaxed(comm_pipeline_programs(6, stages=2, items=3),
                          seed=1)
        out = _assert_clean_everywhere(res, fan_in=2)
        # Sub-communicator barriers matched as separate waves.
        comm_ids = {c.comm_id for c in res.matched.collectives}
        assert len(comm_ids) >= 3  # world split + two team comms


class TestDeferredDeadlock:
    def test_detected_after_healthy_phase(self):
        res = run_relaxed(deferred_deadlock_programs(6, healthy_rounds=8),
                          seed=2)
        assert res.deadlocked
        out = detect_deadlocks_distributed(res.matched, fan_in=2)
        assert out.deadlocked == tuple(range(6))
        # Ranks 0/1 stall in the recv-recv pair; the rest in the barrier.
        for rank in (0, 1):
            op = res.trace.op((rank, out.stable_state[rank]))
            assert op.kind.value == "MPI_Recv"
        for rank in (2, 3, 4, 5):
            op = res.trace.op((rank, out.stable_state[rank]))
            assert op.kind.value == "MPI_Barrier"

    def test_witness_cycle_is_the_recv_pair(self):
        res = run_relaxed(deferred_deadlock_programs(5, healthy_rounds=4),
                          seed=1)
        analysis = analyze_trace(res.matched)
        assert set(analysis.detection.witness_cycle) == {0, 1}

    def test_midrun_detection_catches_it_late_only(self):
        res = run_relaxed(deferred_deadlock_programs(4, healthy_rounds=10),
                          seed=0)
        detector = DistributedDeadlockDetector(res.matched, fan_in=2,
                                               seed=0, op_gap=1e-5)
        out = detector.run(detect_at=[1e-5], detect_at_end=True)
        early, late = out.detections[0], out.detections[-1]
        assert not early.has_deadlock  # healthy phase still running
        assert late.has_deadlock
