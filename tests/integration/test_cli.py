"""The command-line interface, driven in-process."""
import json

import pytest

from repro.cli import main


def test_demo_clean_workload_exit_zero(capsys):
    code = main(["demo", "stress", "-n", "4"])
    out = capsys.readouterr().out
    assert code == 0
    assert "deadlocked ranks ()" in out


def test_demo_deadlock_exit_one(capsys):
    code = main(["demo", "fig2a", "--fan-in", "2"])
    out = capsys.readouterr().out
    assert code == 1
    assert "deadlocked ranks (0, 1)" in out


def test_record_then_analyze_roundtrip(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    assert main(["record", "fig2b", "-o", str(trace)]) == 0
    data = json.loads(trace.read_text())
    assert data["format"] == 1
    code = main(["analyze", str(trace), "--centralized"])
    out = capsys.readouterr().out
    assert code == 1
    assert "deadlocked ranks (0, 1, 2)" in out


def test_adapt_flag_reports_verdict(capsys):
    code = main(["demo", "fig4", "--adapt"])
    out = capsys.readouterr().out
    assert code in (0, 1)
    assert "verdict:" in out


def test_report_and_dot_artifacts(tmp_path, capsys):
    report = tmp_path / "report.html"
    dot = tmp_path / "wfg.dot"
    code = main([
        "demo", "wildcard", "-n", "8",
        "--report", str(report), "--dot", str(dot), "--simplify",
    ])
    assert code == 1
    assert report.read_text().startswith("<!DOCTYPE html>")
    text = dot.read_text()
    assert "except self" in text  # the simplified form

    capsys.readouterr()


def test_figures_tables(capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    assert "Figure 9" in out and "Figure 12" in out
    assert "121.pop2" in out
    assert "paper: 1.34x" in out


def test_unknown_workload(capsys):
    with pytest.raises(SystemExit):
        main(["demo", "not-a-workload"])


def test_persistent_ring_workload(capsys):
    code = main(["demo", "persistent-ring", "-n", "5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "deadlocked ranks ()" in out


def test_checks_flag(capsys):
    code = main(["demo", "fig2a", "--checks"])
    out = capsys.readouterr().out
    assert code == 1
    assert "correctness checks" in out
    assert "missing-finalize" in out  # the hung ranks never finalize
