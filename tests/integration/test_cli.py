"""The command-line interface, driven in-process."""
import json
from pathlib import Path

import pytest

from repro.cli import main

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def test_demo_clean_workload_exit_zero(capsys):
    code = main(["demo", "stress", "-n", "4"])
    out = capsys.readouterr().out
    assert code == 0
    assert "deadlocked ranks ()" in out


def test_demo_deadlock_exit_one(capsys):
    code = main(["demo", "fig2a", "--fan-in", "2"])
    out = capsys.readouterr().out
    assert code == 1
    assert "deadlocked ranks (0, 1)" in out


def test_record_then_analyze_roundtrip(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    assert main(["record", "fig2b", "-o", str(trace)]) == 0
    data = json.loads(trace.read_text())
    assert data["format"] == 1
    code = main(["analyze", str(trace), "--centralized"])
    out = capsys.readouterr().out
    assert code == 1
    assert "deadlocked ranks (0, 1, 2)" in out


def test_adapt_flag_reports_verdict(capsys):
    code = main(["demo", "fig4", "--adapt"])
    out = capsys.readouterr().out
    assert code in (0, 1)
    assert "verdict:" in out


def test_report_and_dot_artifacts(tmp_path, capsys):
    report = tmp_path / "report.html"
    dot = tmp_path / "wfg.dot"
    code = main([
        "demo", "wildcard", "-n", "8",
        "--report", str(report), "--dot", str(dot), "--simplify",
    ])
    assert code == 1
    assert report.read_text().startswith("<!DOCTYPE html>")
    text = dot.read_text()
    assert "except self" in text  # the simplified form

    capsys.readouterr()


def test_figures_tables(capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    assert "Figure 9" in out and "Figure 12" in out
    assert "121.pop2" in out
    assert "paper: 1.34x" in out


def test_unknown_workload_exits_two(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["demo", "not-a-workload"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "unknown workload" in err and "fig2a" in err


def test_analyze_missing_trace_exits_two(tmp_path, capsys):
    assert main(["analyze", str(tmp_path / "nope.json")]) == 2
    assert "cannot load trace" in capsys.readouterr().err


def test_analyze_corrupt_trace_exits_two(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{\"format\": 999}")
    assert main(["analyze", str(bad)]) == 2
    assert "cannot load trace" in capsys.readouterr().err


def test_persistent_ring_workload(capsys):
    code = main(["demo", "persistent-ring", "-n", "5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "deadlocked ranks ()" in out


def test_checks_flag(capsys):
    code = main(["demo", "fig2a", "--checks"])
    out = capsys.readouterr().out
    assert code == 1
    assert "correctness checks" in out
    assert "missing-finalize" in out  # the hung ranks never finalize


class TestLint:
    def test_potential_deadlock_found_statically(self, capsys):
        path = str(EXAMPLES / "lammps_potential_deadlock.py")
        code = main(["lint", path])
        out = capsys.readouterr().out
        assert code == 1
        assert "static-deadlock" in out
        assert "lammps_potential_deadlock.py:" in out
        assert "dependency cycle" in out

    def test_clean_example_exits_zero(self, capsys):
        path = str(EXAMPLES / "quickstart.py")
        code = main(["lint", path])
        out = capsys.readouterr().out
        assert code == 0
        assert "clean" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        code = main(["lint", str(tmp_path / "absent.py")])
        assert code == 2
        assert "cannot analyze" in capsys.readouterr().err

    def test_syntax_error_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        code = main(["lint", str(bad)])
        out = capsys.readouterr().out
        assert code == 1
        assert "syntax-error" in out

    def test_ast_findings_without_programs(self, tmp_path, capsys):
        src = tmp_path / "dropped.py"
        src.write_text(
            "def prog(rank):\n"
            "    rank.send(1, tag=0)\n"
            "    yield rank.finalize()\n"
        )
        code = main(["lint", str(src)])
        out = capsys.readouterr().out
        assert code == 1
        assert "unyielded-call" in out
        assert f"{src}:2" in out

    def test_recorded_hung_trace_reports_deadlock(self, tmp_path, capsys):
        trace = tmp_path / "fig2a.json"
        assert main(["record", "fig2a", "-o", str(trace)]) == 0
        capsys.readouterr()
        code = main(["lint", str(trace)])
        out = capsys.readouterr().out
        assert code == 1
        assert "static-deadlock" in out
        assert "dependency cycle 0 -> 1 -> 0" in out

    def test_recorded_clean_trace_is_clean(self, tmp_path, capsys):
        trace = tmp_path / "stress.json"
        assert main(["record", "stress", "-n", "4", "-o", str(trace)]) == 0
        capsys.readouterr()
        code = main(["lint", str(trace)])
        out = capsys.readouterr().out
        assert code == 0
        assert "clean" in out

    def test_corrupt_trace_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all")
        assert main(["lint", str(bad)]) == 2
        assert "cannot analyze" in capsys.readouterr().err

    def test_multiple_paths_worst_exit_wins(self, capsys):
        clean = str(EXAMPLES / "quickstart.py")
        dead = str(EXAMPLES / "lammps_potential_deadlock.py")
        code = main(["lint", clean, dead])
        out = capsys.readouterr().out
        assert code == 1
        assert "clean" in out and "static-deadlock" in out

    def test_verbose_prints_notes(self, tmp_path, capsys):
        src = tmp_path / "noprog.py"
        src.write_text("X = 1\n")
        code = main(["lint", "-v", str(src)])
        out = capsys.readouterr().out
        assert code == 0
        assert "note:" in out and "AST lint only" in out
