"""The analysis package holds itself to its own static standards.

Mirrors the ``self-lint`` CI job: byte-compile the analysis package,
run ``mypy --strict`` over it when mypy is installed (the CI image has
it; the test skips locally when absent), and keep ``repro lint`` clean
on the shipped examples.
"""
import compileall
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
ANALYSIS = REPO_ROOT / "src" / "repro" / "analysis"


def test_analysis_package_byte_compiles():
    ok = compileall.compile_dir(
        str(ANALYSIS), quiet=2, force=True
    )
    assert ok, "compileall found syntax errors in repro.analysis"


@pytest.mark.skipif(
    shutil.which("mypy") is None, reason="mypy not installed"
)
def test_analysis_package_is_mypy_strict_clean():
    proc = subprocess.run(
        [shutil.which("mypy"), "--strict", str(ANALYSIS)],
        cwd=str(REPO_ROOT),
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_repro_lint_accepts_the_shipped_examples():
    examples = sorted((REPO_ROOT / "examples").glob("*.py"))
    assert examples
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "-v"]
        + [str(p) for p in examples],
        cwd=str(REPO_ROOT),
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    # Shipped examples must stay at exit 0 (clean) or 1 (findings) —
    # never 2 (crash/usage error).
    assert proc.returncode in (0, 1), proc.stdout + proc.stderr
    assert "Traceback" not in proc.stderr
