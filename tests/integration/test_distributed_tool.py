"""Distributed tool vs. the formal oracle across workloads, fan-ins,
delivery schedules, and mid-run detections."""
import pytest

from repro.core import TransitionSystem, detect_deadlocks_distributed
from repro.core.detector import DistributedDeadlockDetector
from repro.mpi.constants import OpKind
from repro.util.errors import ResourceLimitError
from repro.workloads import (
    build_stress_trace,
    build_wildcard_trace,
    gapgeofem_skeleton_programs,
    halo2d_programs,
    lammps_skeleton_programs,
    stress_programs,
    unsafe_blocking_ring_programs,
    wildcard_deadlock_programs,
)
from tests.conftest import run_relaxed, run_strict


class TestStableStateEqualsTerminalState:
    """DESIGN invariant 3: distributed == centralized, any schedule."""

    @pytest.mark.parametrize("fan_in", [2, 3, 4, 8])
    def test_stress_trace_all_fanins(self, fan_in):
        matched = build_stress_trace(9, iterations=10)
        term = TransitionSystem(matched).run()
        out = detect_deadlocks_distributed(matched, fan_in=fan_in)
        assert out.stable_state == term
        assert not out.has_deadlock

    @pytest.mark.parametrize("seed", range(6))
    def test_adversarial_delivery_schedules(self, seed):
        matched = build_stress_trace(6, iterations=8)
        term = TransitionSystem(matched).run()
        out = detect_deadlocks_distributed(matched, fan_in=2, seed=seed)
        assert out.stable_state == term

    def test_halo2d(self):
        res = run_relaxed(halo2d_programs(3, 3, iterations=3), seed=2)
        assert not res.deadlocked
        term = TransitionSystem(res.matched).run()
        out = detect_deadlocks_distributed(res.matched, fan_in=4)
        assert out.stable_state == term
        assert not out.has_deadlock

    def test_engine_trace_equals_direct_trace(self):
        res = run_relaxed(stress_programs(6, iterations=10), seed=5)
        direct = build_stress_trace(6, iterations=10)
        assert res.matched.send_of == direct.send_of
        assert TransitionSystem(res.matched).run() == TransitionSystem(
            direct
        ).run()


class TestDeadlockScenarios:
    def test_wildcard_deadlock_p2_arcs(self):
        p = 12
        matched = build_wildcard_trace(p)
        out = detect_deadlocks_distributed(matched, fan_in=4)
        assert out.deadlocked == tuple(range(p))
        record = out.detection
        assert record.graph.arc_count() == p * (p - 1)
        assert record.dot_text.count("->") == p * (p - 1)

    def test_unsafe_blocking_ring(self):
        """Blocking-send cycle: completes with buffering, flagged."""
        res = run_relaxed(unsafe_blocking_ring_programs(5), seed=1)
        assert not res.deadlocked
        out = detect_deadlocks_distributed(res.matched, fan_in=2)
        assert out.deadlocked == tuple(range(5))

    def test_lammps_two_phase(self):
        """Healthy halo iterations, then the potential send-send cycle;
        the distributed state stalls exactly at the unsafe sends."""
        res = run_relaxed(lammps_skeleton_programs(8), seed=4)
        assert not res.deadlocked
        out = detect_deadlocks_distributed(res.matched, fan_in=4)
        assert out.deadlocked == tuple(range(8))
        for rank in range(8):
            op = res.trace.op((rank, out.stable_state[rank]))
            assert op.kind is OpKind.SEND and op.tag == 99

    def test_partial_deadlock_others_finish(self):
        """Two ranks deadlock while the rest run to completion."""

        def victim(r):
            peer = 1 - r.rank
            yield r.recv(source=peer)
            yield r.send(dest=peer)

        def bystander(r):
            peer = 5 - r.rank  # 2<->3
            yield from r.sendrecv(dest=peer, source=peer)

        res = run_relaxed([victim, victim, bystander, bystander], seed=0)
        assert res.deadlocked
        out = detect_deadlocks_distributed(res.matched, fan_in=2)
        assert out.deadlocked == (0, 1)


class TestMidRunDetection:
    def test_no_false_positives_during_healthy_run(self):
        """Detections fired while the application is mid-flight must
        never report a deadlock for a deadlock-free trace."""
        matched = build_stress_trace(6, iterations=20)
        detector = DistributedDeadlockDetector(matched, fan_in=2, seed=3)
        out = detector.run(detect_at=[1e-5, 5e-5, 2e-4], detect_at_end=True)
        assert len(out.detections) == 4
        for record in out.detections:
            assert not record.has_deadlock

    def test_early_deadlock_found_mid_run(self):
        """A subset deadlock is reported by a mid-run detection even
        though other ranks keep streaming events (Section 3.2)."""

        def victim(r):
            peer = 1 - r.rank
            yield r.recv(source=peer)

        def busy(r):
            peer = 5 - r.rank
            for it in range(30):
                yield from r.sendrecv(dest=peer, source=peer, sendtag=it)

        res = run_relaxed([victim, victim, busy, busy], seed=1)
        assert res.deadlocked
        detector = DistributedDeadlockDetector(res.matched, fan_in=2, seed=1)
        out = detector.run(detect_at=[3e-4], detect_at_end=True)
        late = out.detections[-1]
        assert late.result.deadlocked == (0, 1)

    def test_consistent_state_resumes_progress(self):
        """After requestWaits the nodes resume; the final stable state
        is unaffected by any number of mid-run freezes."""
        matched = build_stress_trace(8, iterations=12)
        term = TransitionSystem(matched).run()
        detector = DistributedDeadlockDetector(matched, fan_in=2, seed=7)
        out = detector.run(
            detect_at=[2e-5, 4e-5, 8e-5, 1.6e-4], detect_at_end=True
        )
        assert out.stable_state == term


class TestResourceLimits:
    def test_gapgeofem_window_blowup_detected(self):
        """The 128.GAPgeofem condition: trace windows exceed the
        configured memory budget and the tool reports it."""
        res = run_relaxed(gapgeofem_skeleton_programs(4, iterations=80),
                          seed=2)
        assert not res.deadlocked
        with pytest.raises(ResourceLimitError):
            detect_deadlocks_distributed(
                res.matched, fan_in=2, window_limit=40
            )

    def test_ample_window_succeeds(self):
        res = run_relaxed(gapgeofem_skeleton_programs(4, iterations=80),
                          seed=2)
        out = detect_deadlocks_distributed(
            res.matched, fan_in=2, window_limit=100_000
        )
        assert not out.has_deadlock
        assert out.peak_window > 40


class TestToolStatistics:
    def test_message_counts_by_type(self):
        matched = build_stress_trace(4, iterations=10)
        out = detect_deadlocks_distributed(matched, fan_in=2)
        all_stats = {}
        for stats in out.node_stats.values():
            for k, v in stats.items():
                all_stats[k] = all_stats.get(k, 0) + v
        # Every op arrives somewhere; handshakes and waves flow.
        assert all_stats["NewOpMsg"] == matched.trace.total_ops()
        assert all_stats["PassSend"] == 40  # one per isend
        assert all_stats["RecvActive"] == 40
        assert all_stats["RecvActiveAck"] == 40
        assert all_stats["CollectiveReady"] >= 1
        assert all_stats["RequestWaits"] == 2  # both first-layer nodes

    def test_window_slides_on_long_runs(self):
        """Memory boundedness: the peak window stays far below the
        trace length when events arrive gradually."""
        matched = build_stress_trace(4, iterations=150)
        detector = DistributedDeadlockDetector(
            matched, fan_in=2, seed=0, op_gap=1e-4
        )
        out = detector.run()
        per_rank_len = matched.trace.length(0)
        assert out.peak_window < per_rank_len / 3
