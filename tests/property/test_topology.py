"""Property: TBON topology structural invariants for any (p, fan-in)."""
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tbon import TbonTopology


@settings(max_examples=120, deadline=None)
@given(p=st.integers(1, 600), fan_in=st.integers(2, 17))
def test_topology_invariants(p, fan_in):
    topo = TbonTopology.build(p, fan_in)

    # Layer 0 is exactly the application ranks.
    assert topo.layers[0] == tuple(range(p))
    # The tree narrows monotonically above the first layer and ends in
    # a single dedicated root distinct from the first layer when the
    # first layer is a single node.
    widths = [len(layer) for layer in topo.layers[1:]]
    assert widths[-1] == 1
    assert all(a >= b for a, b in zip(widths, widths[1:]))
    assert topo.root not in topo.layers[0]

    # Node ids are unique across all layers.
    all_nodes = [n for layer in topo.layers for n in layer]
    assert len(all_nodes) == len(set(all_nodes))

    # Every non-root node has a parent in the next layer; children and
    # parent relations are mutually consistent.
    for idx, layer in enumerate(topo.layers[:-1]):
        for node in layer:
            parent = topo.parent(node)
            assert parent in topo.layers[idx + 1]
            assert node in topo.children(parent)

    # First-layer hosting partitions the ranks exactly.
    hosted = []
    for node in topo.first_layer:
        ranks = topo.ranks_of_host(node)
        assert 1 <= len(ranks) <= fan_in
        hosted.extend(ranks)
    assert sorted(hosted) == list(range(p))

    # ranks_under of the root covers everything; of a first-layer node,
    # exactly its hosted ranks.
    assert topo.ranks_under(topo.root) == tuple(range(p))
    for node in topo.first_layer:
        assert topo.ranks_under(node) == topo.ranks_of_host(node)

    # Paths to the root are consistent and acyclic.
    for node in topo.first_layer:
        path = topo.path_to_root(node)
        assert len(set(path)) == len(path)
        assert path[-1] == topo.root


@settings(max_examples=60, deadline=None)
@given(p=st.integers(2, 400), fan_in=st.integers(2, 9))
def test_host_lookup_matches_partition(p, fan_in):
    topo = TbonTopology.build(p, fan_in)
    for rank in range(p):
        host = topo.host_of_rank(rank)
        assert rank in topo.ranks_of_host(host)
