"""Property: the virtual runtime obeys MPI's matching semantics.

These check the *substrate* itself (the thing that replaces a real MPI
library), independent of the analyses: non-overtaking per channel,
wildcard-observation consistency, and schedule-independence of traces
for straight-line deterministic programs.
"""
from typing import Dict, List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.blocking import BlockingSemantics
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.runtime import run_programs
from repro.workloads.randomgen import safe_program_set


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    run_seed=st.integers(0, 1_000),
    wildcards=st.booleans(),
)
def test_non_overtaking_per_channel(seed, run_seed, wildcards):
    """Matched (send, recv) pairs never cross within one
    (communicator, source, destination, matching-tag) channel: if two
    sends from the same source to the same destination are both
    matched and tag-comparable, their receives preserve send order."""
    gen = safe_program_set(4, events=14, seed=seed,
                           allow_wildcards=wildcards)
    res = run_programs(
        gen.programs(), semantics=BlockingSemantics.relaxed(),
        seed=run_seed,
    )
    trace = res.trace
    pairs: Dict[Tuple[int, int, int], List[Tuple[int, int, int]]] = {}
    for recv_ref, send_ref in res.matched.send_of.items():
        send = trace.op(send_ref)
        recv = trace.op(recv_ref)
        key = (send.comm_id, send.rank, recv.rank)
        pairs.setdefault(key, []).append(
            (send.ts, recv.ts, send.tag)
        )
    for key, matched in pairs.items():
        matched.sort()
        for (s1, r1, t1), (s2, r2, t2) in zip(matched, matched[1:]):
            # Same-envelope messages must be received in send order.
            if t1 == t2:
                assert r1 < r2, (
                    f"channel {key}: send {s1} -> recv {r1} overtaken "
                    f"by send {s2} -> recv {r2}"
                )


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000), run_seed=st.integers(0, 1_000))
def test_wildcard_observations_consistent_with_matching(seed, run_seed):
    """Every completed wildcard receive's observed source/tag equal the
    matched send's actual envelope."""
    gen = safe_program_set(4, events=14, seed=seed, allow_wildcards=True)
    res = run_programs(
        gen.programs(), semantics=BlockingSemantics.relaxed(),
        seed=run_seed,
    )
    for recv_ref, send_ref in res.matched.send_of.items():
        recv = res.trace.op(recv_ref)
        send = res.trace.op(send_ref)
        if recv.peer == ANY_SOURCE:
            assert recv.observed_peer == send.rank
        if recv.tag == ANY_TAG:
            assert recv.observed_tag == send.tag
        # Envelope compatibility must hold for every recorded match.
        assert recv.envelope_matches_send(send)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    run_seeds=st.lists(st.integers(0, 999), min_size=2, max_size=4,
                       unique=True),
)
def test_deterministic_programs_have_schedule_independent_traces(
    seed, run_seeds
):
    """Without wildcards, the matched trace is a pure function of the
    programs — any scheduler seed yields identical ops and matches."""
    gen = safe_program_set(4, events=12, seed=seed, allow_wildcards=False)
    references = None
    for run_seed in run_seeds:
        res = run_programs(
            gen.programs(), semantics=BlockingSemantics.relaxed(),
            seed=run_seed,
        )
        snapshot = (
            tuple(
                tuple(op.describe() for op in res.trace.sequence(r))
                for r in range(4)
            ),
            tuple(sorted(res.matched.send_of.items())),
        )
        if references is None:
            references = snapshot
        else:
            assert snapshot == references


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000), run_seed=st.integers(0, 1_000))
def test_every_completed_receive_is_matched(seed, run_seed):
    """In a completed run, every blocking receive and every completed
    request-creating receive has a recorded match."""
    gen = safe_program_set(4, events=12, seed=seed, allow_wildcards=True)
    res = run_programs(
        gen.programs(), semantics=BlockingSemantics.relaxed(),
        seed=run_seed,
    )
    if res.deadlocked:
        return
    for op in res.trace:
        if op.kind.value == "MPI_Recv":
            assert res.matched.match_of(op.ref) is not None, op.describe()
