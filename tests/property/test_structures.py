"""Property tests on core data structures: FIFO channels, the WFG
criterion vs. brute force, rank-set compression."""
from typing import Dict, List, Set

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.waitfor import WaitForCondition, WaitTarget
from repro.tbon.network import Network, jittered_latency
from repro.wfg.detect import detect_deadlock
from repro.wfg.graph import WaitForGraph
from repro.wfg.simplify import RankSet


class _Sink:
    def __init__(self, node_id):
        self.node_id = node_id
        self.received = []

    def handle(self, msg, net, src):
        self.received.append((src, msg))


@settings(max_examples=50, deadline=None)
@given(
    schedule=st.lists(
        st.tuples(st.integers(1, 4), st.integers(0, 999)), min_size=1,
        max_size=60,
    ),
    net_seed=st.integers(0, 10_000),
)
def test_channels_never_overtake(schedule, net_seed):
    """For any senders and any latency jitter, per-channel delivery
    order equals send order (GTI's non-overtaking guarantee)."""
    net = Network(jittered_latency(seed=net_seed, base=1e-6, jitter=1e-3))
    sink = _Sink(0)
    net.attach(sink)
    sent: Dict[int, List[int]] = {}
    for i, (src, _) in enumerate(schedule):
        sent.setdefault(src, []).append(i)
        net.send(src, 0, i)
    net.run()
    received: Dict[int, List[int]] = {}
    for src, msg in sink.received:
        received.setdefault(src, []).append(msg)
    assert received == sent


def _brute_force_live(num: int, nodes: Dict[int, List[List[int]]],
                      finished: Set[int]) -> Set[int]:
    """Naive fixpoint for comparison with the optimized detector."""
    live = set(range(num)) - set(nodes) - finished
    changed = True
    while changed:
        changed = False
        for rank, clauses in nodes.items():
            if rank in live:
                continue
            if all(any(t in live for t in clause) for clause in clauses):
                live.add(rank)
                changed = True
    return live


@st.composite
def _random_wfg(draw):
    num = draw(st.integers(2, 8))
    blocked = draw(
        st.sets(st.integers(0, num - 1), min_size=1, max_size=num)
    )
    remaining = sorted(set(range(num)) - blocked)
    finished = draw(st.sets(st.sampled_from(remaining or [0]),
                            max_size=len(remaining)))
    if not remaining:
        finished = set()
    nodes = {}
    for rank in blocked:
        n_clauses = draw(st.integers(1, 3))
        clauses = []
        for _ in range(n_clauses):
            clause = draw(
                st.lists(st.integers(0, num - 1), min_size=0, max_size=4)
            )
            clauses.append([t for t in clause if t != rank])
        nodes[rank] = clauses
    return num, nodes, finished


@settings(max_examples=120, deadline=None)
@given(_random_wfg())
def test_detection_matches_brute_force(data):
    num, nodes, finished = data
    conditions = []
    for rank, clauses in nodes.items():
        cond = WaitForCondition(rank=rank, op_ref=(rank, 0),
                                op_description="op")
        for clause in clauses:
            cond.clauses.append(tuple(WaitTarget(t, "r") for t in clause))
        conditions.append(cond)
    graph = WaitForGraph.from_conditions(num, conditions, finished=finished)
    result = detect_deadlock(graph)
    live = _brute_force_live(num, nodes, finished)
    expected_deadlocked = tuple(sorted(set(nodes) - live))
    assert result.deadlocked == expected_deadlocked
    assert set(result.releasable) == set(nodes) & live
    # The witness cycle, when present, lies inside the deadlocked set.
    assert set(result.witness_cycle) <= set(result.deadlocked)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 200), max_size=64))
def test_rankset_roundtrip(ranks):
    rs = RankSet.from_ranks(ranks)
    expected = sorted(set(ranks))
    reconstructed = [
        r for lo, hi in rs.ranges for r in range(lo, hi + 1)
    ]
    assert reconstructed == expected
    assert rs.count() == len(expected)
    for r in expected:
        assert r in rs
    for r in set(range(201)) - set(expected):
        assert r not in rs


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 100), max_size=40))
def test_rankset_ranges_are_canonical(ranks):
    rs = RankSet.from_ranks(ranks)
    for (lo1, hi1), (lo2, hi2) in zip(rs.ranges, rs.ranges[1:]):
        assert lo1 <= hi1
        assert hi1 + 1 < lo2  # disjoint and non-adjacent
