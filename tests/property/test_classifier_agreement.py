"""Fragment classifier + linear matcher must agree with the explorer.

The fast path in ``repro verify`` stands on two claims:

* **soundness of the label** — whenever the extraction-path classifier
  says a program set is in a decidable fragment, the O(n) linear
  matcher accepts it and its verdict (and blamed-rank set) equals the
  full match-set exploration's; and
* **honesty of the refusal** — whenever the classifier says
  UNDECIDABLE for a wildcard, the linear matcher also refuses, so the
  driver can never take the fast path on an input it would get wrong.

Random deterministic program sets (plus deadlock-introducing
mutations) exercise the first claim; random wildcard sets exercise the
second. Divergence count must be exactly zero.
"""
import pytest

from repro.analysis import (
    ExplorationUnsupported,
    Verdict,
    explore_sequences,
    extract_programs,
)
from repro.analysis.symbolic import (
    Fragment,
    LinearMatchUnsupported,
    classify_extraction,
    decide_extraction,
    match_linear,
)
from repro.workloads.randomgen import mutate_program_set, safe_program_set

SAFE_SEEDS = range(40)
MUTATED_SEEDS = range(30)
WILDCARD_SEEDS = range(12)
MAX_STATES = 20_000

_agreements = {"free": 0, "deadlock": 0, "skipped": 0}


def _generate(seed, *, wildcards=False):
    p = 2 + seed % 3
    events = 8 + seed % 7
    return safe_program_set(p, events, seed, allow_wildcards=wildcards)


def _mutate(seed):
    return mutate_program_set(
        _generate(seed), seed + 20_000, mutations=1 + seed % 3
    )


def _check_agreement(generated):
    """One random program set through both deciders."""
    ext = extract_programs(generated.programs())
    classification = classify_extraction(ext)
    if not classification.decidable:
        # Deterministic generators stay wildcard-free; the only honest
        # refusals here are truncation/inexactness artifacts.
        _agreements["skipped"] += 1
        return
    assert classification.fragment is Fragment.SEQ_DETERMINISTIC
    try:
        exp = explore_sequences(ext.sequences, ext.comms,
                                max_states=MAX_STATES)
    except ExplorationUnsupported:
        # Structurally broken (e.g. a mutation produced mismatched
        # collective waves): the linear matcher must refuse identically.
        with pytest.raises(LinearMatchUnsupported):
            match_linear(ext.sequences, ext.comms)
        _agreements["skipped"] += 1
        return
    if exp.verdict is Verdict.BOUND_EXCEEDED:
        _agreements["skipped"] += 1
        return
    lin = match_linear(ext.sequences, ext.comms)
    assert lin.has_deadlock == (
        exp.verdict is Verdict.DEADLOCK_POSSIBLE
    ), f"verdict divergence on seed {generated.seed}"
    assert sorted(lin.deadlocked) == sorted(exp.deadlocked), (
        f"blame divergence on seed {generated.seed}"
    )
    # The packaged fast-path result carries the same verdict and never
    # touches the state graph.
    fast = decide_extraction(ext)
    assert fast is not None
    assert fast.verdict is exp.verdict
    assert fast.stats.states_explored == 0
    assert fast.fragment == "SEQ-DETERMINISTIC"
    if lin.has_deadlock:
        _agreements["deadlock"] += 1
    else:
        _agreements["free"] += 1


@pytest.mark.parametrize("seed", SAFE_SEEDS)
def test_safe_program_sets_agree(seed):
    _check_agreement(_generate(seed))


@pytest.mark.parametrize("seed", MUTATED_SEEDS)
def test_mutated_program_sets_agree(seed):
    _check_agreement(_mutate(seed))


@pytest.mark.parametrize("seed", WILDCARD_SEEDS)
def test_wildcard_sets_are_refused_by_both_gate_and_matcher(seed):
    generated = _generate(seed, wildcards=True)
    if not generated.uses_wildcards:
        pytest.skip("seed rolled no wildcard receives")
    ext = extract_programs(generated.programs())
    classification = classify_extraction(ext)
    assert not classification.decidable
    assert decide_extraction(ext) is None
    if ext.exact or ext.wildcard_exact:
        with pytest.raises(LinearMatchUnsupported):
            match_linear(ext.sequences, ext.comms)


def test_zzz_coverage_floor():
    """Runs last (alphabetical): the suite must have actually decided
    ≥60 program sets with both verdicts represented — otherwise the
    agreement claims above are vacuous."""
    decided = _agreements["free"] + _agreements["deadlock"]
    assert decided >= 60, _agreements
    assert _agreements["free"] >= 10, _agreements
    assert _agreements["deadlock"] >= 5, _agreements
