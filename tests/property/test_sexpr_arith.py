"""The affine domain's arithmetic must match concrete Python semantics.

Everything the prover and classifier conclude rests on
:mod:`repro.analysis.symbolic.sexpr` agreeing with what the interpreter
would compute — including the sharp edges: Python's floored division
and always-non-negative ``%`` on negative operands, and the honesty of
``UNKNOWN`` on symbolic denominators (``x % rank``, ``x // size``) that
have no affine closed form.

Random affine terms are built alongside a concrete Python oracle
function; ``evaluate``/``mod``/``floordiv`` round-trip against the
oracle for every rank at process counts across ``p in 2..64``.
"""
import random

import pytest

from repro.analysis.symbolic import sexpr
from repro.analysis.symbolic.sexpr import RANK, SIZE, UNKNOWN, const

SEEDS = range(40)
SIZES = (2, 3, 4, 5, 7, 8, 13, 16, 25, 33, 48, 64)


# ----------------------------------------------------------------------
# Random affine terms with a parallel concrete oracle
# ----------------------------------------------------------------------

def _random_term(rng, depth=0):
    """A random affine expression and its concrete Python oracle."""
    roll = rng.random()
    if depth >= 3 or roll < 0.3:
        choice = rng.randrange(3)
        if choice == 0:
            k = rng.randint(-9, 9)  # negative constants included
            return const(k), (lambda rank, size, k=k: k)
        if choice == 1:
            return RANK, (lambda rank, size: rank)
        return SIZE, (lambda rank, size: size)
    a, fa = _random_term(rng, depth + 1)
    op = rng.randrange(4)
    if op == 0:
        b, fb = _random_term(rng, depth + 1)
        return sexpr.add(a, b), (
            lambda rank, size: fa(rank, size) + fb(rank, size)
        )
    if op == 1:
        b, fb = _random_term(rng, depth + 1)
        return sexpr.sub(a, b), (
            lambda rank, size: fa(rank, size) - fb(rank, size)
        )
    if op == 2:
        return sexpr.neg(a), (lambda rank, size: -fa(rank, size))
    k = rng.randint(-4, 4)
    return sexpr.mul(const(k), a), (
        lambda rank, size, k=k: k * fa(rank, size)
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_affine_evaluate_matches_the_concrete_oracle(seed):
    rng = random.Random(seed)
    term, oracle = _random_term(rng)
    assert term is not UNKNOWN  # the builder stays inside the domain
    for size in SIZES:
        for rank in range(0, size, max(1, size // 7)):
            assert term.evaluate(rank, size) == oracle(rank, size)


@pytest.mark.parametrize("seed", SEEDS)
def test_mod_size_matches_python_modulo_on_negative_operands(seed):
    """``(...) % size`` round-trips, wrap-around and all."""
    rng = random.Random(seed)
    term, oracle = _random_term(rng)
    modded = sexpr.mod(term, SIZE)
    assert modded is not UNKNOWN
    for size in SIZES:
        for rank in range(0, size, max(1, size // 7)):
            # Python's % is non-negative for a positive modulus even
            # when the left operand is negative — neighbour math like
            # (rank - 1) % size depends on exactly this.
            assert modded.evaluate(rank, size) == (
                oracle(rank, size) % size
            )


@pytest.mark.parametrize("seed", SEEDS)
def test_const_mod_and_floordiv_match_python(seed):
    rng = random.Random(seed)
    a = rng.randint(-50, 50)
    b = rng.choice([x for x in range(-12, 13) if x != 0])
    got_mod = sexpr.mod(const(a), const(b))
    got_div = sexpr.floordiv(const(a), const(b))
    # Python semantics: floored division, remainder with the sign of
    # the divisor. (-7) // 2 == -4 and (-7) % 2 == 1.
    assert got_mod.const_value == a % b
    assert got_div.const_value == a // b
    # The pair still satisfies the division identity.
    assert got_div.const_value * b + got_mod.const_value == a


def test_symbolic_denominators_are_honestly_unknown():
    """No closed form ⇒ UNKNOWN, never a wrong affine."""
    expr = sexpr.add(RANK, const(3))
    assert sexpr.mod(expr, RANK) is UNKNOWN
    assert sexpr.mod(expr, sexpr.add(SIZE, const(1))) is UNKNOWN
    assert sexpr.floordiv(expr, SIZE) is UNKNOWN
    assert sexpr.floordiv(expr, RANK) is UNKNOWN
    assert sexpr.floordiv(const(10), sexpr.add(RANK, const(1))) is UNKNOWN


def test_division_by_zero_is_unknown_not_a_crash():
    assert sexpr.mod(const(7), const(0)) is UNKNOWN
    assert sexpr.floordiv(const(7), const(0)) is UNKNOWN


def test_arithmetic_on_modded_values_is_unknown():
    """``mod_size`` marks the outermost op; nesting leaves the domain."""
    wrapped = sexpr.mod(sexpr.add(RANK, const(1)), SIZE)
    assert sexpr.neg(wrapped) is UNKNOWN
    assert sexpr.mul(const(2), wrapped) is UNKNOWN
    assert sexpr.mod(wrapped, SIZE) is UNKNOWN


@pytest.mark.parametrize("seed", range(20))
def test_mod_size_idempotence_against_double_wrap(seed):
    """``(x % size) % size == x % size`` concretely at every p."""
    rng = random.Random(seed)
    term, oracle = _random_term(rng)
    modded = sexpr.mod(term, SIZE)
    for size in SIZES:
        for rank in (0, 1, size - 1):
            value = modded.evaluate(rank, size)
            assert 0 <= value < size
            assert value % size == value
