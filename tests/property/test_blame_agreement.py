"""Property: blame root causes == the runtime WFG's deadlocked set.

The blame analysis rebuilds wait-for conditions from serialized trace
events and re-runs the liveness fixpoint; on directed deadlock
workloads its root-cause set must equal the set the runtime detector
reported, and all terminal blocked time must land on those ranks.
"""
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.blame import blame_programs, check_agreement


def _send_ring(p, members, tag=99):
    """A blocking-send cycle among ``members``; others pair up safely."""
    members = sorted(members)
    nxt = {
        r: members[(i + 1) % len(members)] for i, r in enumerate(members)
    }

    def prog(r):
        if r.rank in nxt:
            # Blocking send before receive: deadlocks under strict
            # semantics (the detector's model), buffered at runtime.
            prev = members[(members.index(r.rank) - 1) % len(members)]
            yield r.send(dest=nxt[r.rank], tag=tag, nbytes=1024)
            yield r.recv(source=prev, tag=tag, nbytes=1024)
        yield r.finalize()

    return [prog] * p


def _crossed_recv_pair(p, a, b):
    """Ranks ``a`` and ``b`` both receive first: a runtime deadlock."""

    def prog(r):
        if r.rank == a:
            yield r.recv(source=b, tag=1, nbytes=16)
            yield r.send(dest=b, tag=1, nbytes=16)
        elif r.rank == b:
            yield r.recv(source=a, tag=1, nbytes=16)
            yield r.send(dest=a, tag=1, nbytes=16)
        yield r.finalize()

    return [prog] * p


@settings(max_examples=15, deadline=None)
@given(
    p=st.integers(3, 8),
    offset=st.integers(0, 7),
    size=st.integers(2, 8),
    seed=st.integers(0, 1000),
)
def test_send_ring_roots_match_runtime(p, offset, size, seed):
    members = sorted({(offset + i) % p for i in range(min(size, p))})
    if len(members) < 2:
        members = [0, 1]
    report, outcome = blame_programs(_send_ring(p, members), seed=seed)
    assert outcome.has_deadlock
    assert check_agreement(report, outcome.deadlocked)
    assert set(report.root_causes) == set(outcome.deadlocked)
    # Every terminally blocked microsecond lands on a root cause.
    roots = set(report.root_causes)
    for iv in report.intervals:
        if iv.terminal:
            assert iv.blamed in roots
    assert report.attributed_ratio >= 0.9


@settings(max_examples=10, deadline=None)
@given(
    p=st.integers(2, 8),
    pair_seed=st.integers(0, 1000),
    seed=st.integers(0, 1000),
)
def test_crossed_receives_roots_match_runtime(p, pair_seed, seed):
    a = pair_seed % p
    b = (pair_seed // 7 + 1 + a) % p
    if a == b:
        b = (a + 1) % p
    report, outcome = blame_programs(_crossed_recv_pair(p, a, b), seed=seed)
    assert outcome.has_deadlock
    assert check_agreement(report, outcome.deadlocked)
    assert {a, b} <= set(report.root_causes)


@settings(max_examples=10, deadline=None)
@given(p=st.integers(2, 6), seed=st.integers(0, 1000))
def test_clean_pairs_report_no_roots(p, seed):
    def prog(r):
        partner = r.rank ^ 1
        if partner < r.size:
            if r.rank % 2 == 0:
                yield r.send(dest=partner, tag=3, nbytes=64)
                yield r.recv(source=partner, tag=3, nbytes=64)
            else:
                yield r.recv(source=partner, tag=3, nbytes=64)
                yield r.send(dest=partner, tag=3, nbytes=64)
        yield r.finalize()

    report, outcome = blame_programs([prog] * p, seed=seed)
    assert not outcome.has_deadlock
    assert not report.has_deadlock
    assert check_agreement(report, outcome.deadlocked)
