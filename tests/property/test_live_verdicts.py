"""Property: the live health verdict agrees with the runtime WFG.

``DEADLOCK-CONFIRMED`` is only ever emitted when the detector's
wait-for graph actually contains a deadlock — the health engine cannot
confirm one on its own, no matter how long a rank stalls. Conversely a
confirmed deadlock is never softened. And deadlock-free-but-imbalanced
programs (the soft-hang workloads) end PROGRESSING or SOFT-HANG,
never DEADLOCK-CONFIRMED.
"""
import pytest

from repro import Session
from repro.obs import DEADLOCK_CONFIRMED, PROGRESSING, SOFT_HANG
from repro.util.errors import MpiUsageError
from repro.workloads import (
    mutate_program_set,
    safe_program_set,
    soft_hang_imbalance_programs,
    straggler_collective_programs,
)

SEEDS = range(0, 24)


def _verdict_for(programs, seed):
    session = Session(live=True, live_every_steps=32)
    try:
        session.record(programs, seed=seed)
    except MpiUsageError:
        return None, None
    outcome = session.analyze()
    verdict = session.finalize_live()
    return verdict, outcome


@pytest.mark.parametrize("seed", SEEDS)
def test_confirmed_iff_wfg_agrees(seed):
    gen = safe_program_set(
        p=4, events=8, seed=seed, allow_wildcards=True,
        allow_collectives=True,
    )
    if seed % 3 == 0:
        gen = mutate_program_set(gen, seed=seed + 999, mutations=1)
    verdict, outcome = _verdict_for(gen.programs(), seed)
    if verdict is None:
        pytest.skip("mutation produced an MPI usage error")
    assert (verdict.state == DEADLOCK_CONFIRMED) == outcome.has_deadlock
    if outcome.has_deadlock:
        assert verdict.roots == tuple(sorted(outcome.deadlocked))
        assert verdict.code == 2
    else:
        assert verdict.state in (PROGRESSING, SOFT_HANG)


@pytest.mark.parametrize("seed", range(6))
def test_safe_sets_never_confirm(seed):
    gen = safe_program_set(p=3, events=10, seed=seed + 100)
    verdict, outcome = _verdict_for(gen.programs(), seed)
    assert not outcome.has_deadlock  # safe by construction
    assert verdict.state in (PROGRESSING, SOFT_HANG)


@pytest.mark.parametrize(
    "factory",
    [soft_hang_imbalance_programs, straggler_collective_programs],
    ids=["imbalance", "straggler"],
)
@pytest.mark.parametrize("p", [4, 8])
def test_imbalanced_but_live_never_deadlock(factory, p):
    verdict, outcome = _verdict_for(factory(p), seed=p)
    assert not outcome.has_deadlock
    assert verdict.state in (PROGRESSING, SOFT_HANG)
    assert verdict.code in (0, 1)


def test_windows_grade_soft_but_final_recovers():
    """Mid-run SOFT-HANG windows must not stick to the final verdict."""
    session = Session(live=True, live_every_steps=32)
    session.record(soft_hang_imbalance_programs(8, straggler_ops=96))
    session.analyze()
    verdict = session.finalize_live()
    states = {doc["health"]["state"] for doc in session.live.snapshots}
    assert SOFT_HANG in states  # the straggler was visible live...
    assert verdict.state == PROGRESSING  # ...but the run completed
