"""Property: the sharded backend is observationally equivalent to the
inline one.

The distributed protocol is confluent (``test_confluence``): given
per-channel FIFO delivery — which the batched cross-process transport
preserves — the terminal wait states, and therefore the root's
wait-for graph, do not depend on message interleaving. So running the
first-layer nodes in worker processes must yield the *identical*
verdict, WFG arc set, blame chain, and even tool-message count as the
single-process simulated network, for any trace and any shard count.
"""
import pytest

from repro.backend import InlineBackend, ShardedBackend
from repro.mpi.blocking import BlockingSemantics
from repro.runtime import run_programs
from repro.util.errors import MpiUsageError
from repro.workloads.randomgen import mutate_program_set, safe_program_set


def _random_matched_trace(seed: int):
    """A random 3-rank trace; every third one is mutated (may deadlock)."""
    gen = safe_program_set(
        p=3, events=8, seed=seed, allow_wildcards=True,
        allow_collectives=True,
    )
    if seed % 3 == 0:
        gen = mutate_program_set(gen, seed=seed + 999, mutations=1)
    try:
        res = run_programs(
            gen.programs(),
            semantics=BlockingSemantics.relaxed(),
            seed=seed,
        )
    except MpiUsageError:
        return None
    return res.matched


def _fingerprint(outcome):
    """Everything the analysis is *about*, interleaving-independent."""
    record = outcome.detection
    graph = record.graph
    nodes = frozenset(
        (rank, tuple(sorted(tuple(sorted(c)) for c in node.clauses)))
        for rank, node in (graph.nodes.items() if graph else ())
    )
    arcs = frozenset(graph.arcs()) if graph else frozenset()
    return {
        "deadlocked": tuple(outcome.deadlocked),
        "stable": outcome.stable_state,
        "wfg_nodes": nodes,
        "wfg_arcs": arcs,
        "blame": record.blame,
        "messages": outcome.messages_sent,
        "bytes": outcome.bytes_sent,
    }


@pytest.mark.parametrize("batch", range(6))
def test_sharded_matches_inline_on_random_programs(batch):
    """60 random programs (10 per batch), shards 2 and 4."""
    checked = 0
    seed = batch * 1000
    while checked < 10:
        seed += 1
        matched = _random_matched_trace(seed)
        if matched is None:
            continue
        checked += 1
        reference = _fingerprint(
            InlineBackend().run(matched, seed=seed, generate_outputs=False)
        )
        for shards in (2, 4):
            got = _fingerprint(
                ShardedBackend(shards=shards).run(
                    matched, seed=seed, generate_outputs=False
                )
            )
            assert got == reference, (
                f"seed {seed}, shards {shards}: sharded analysis "
                f"diverged from inline"
            )


def test_sharded_matches_inline_on_figure_8_symmetric_ping():
    """The paper's FIFO-sensitive case: symmetric wildcard pings.

    Cross-shard batching must not reorder per-channel traffic, or the
    wildcard matcher would pin different sources than inline.
    """
    from repro.workloads import wildcard_deadlock_programs

    res = run_programs(
        wildcard_deadlock_programs(8),
        semantics=BlockingSemantics.relaxed(),
        seed=7,
    )
    reference = _fingerprint(InlineBackend().run(res.matched, seed=7))
    for shards in (2, 3, 4, 8):
        got = _fingerprint(
            ShardedBackend(shards=shards).run(res.matched, seed=7)
        )
        assert got == reference
