"""The parameterized prover must agree with per-size verification.

``repro prove`` makes claims about *every* process count; each per-size
claim is checkable by the repo's authoritative per-size pipeline
(concrete extraction + the linear fragment decider, itself pinned to
the explorer by ``test_classifier_agreement``). Random wildcard-free
SPMD programs — composed from safe exchanges, size-guarded ring
inversions, parity-conditional senders, gathers, and collectives —
exercise both verdicts:

* ``PROVED-ALL-P`` ⇒ deadlock-free at every sampled ``p`` in 2..16;
* ``REFUTED`` ⇒ the reported ``min_p`` really deadlocks, every smaller
  size really is clean, and the witness replays to a runtime deadlock;
* wildcard-free templates never fall to ``UNDECIDABLE``; and a
  wildcard program is never ``PROVED-ALL-P`` (honesty of the gate).

Divergence count must be exactly zero.
"""
import random

import pytest

from repro.analysis import Verdict, extract_programs
from repro.analysis.symbolic import ProveVerdict, prove_source
from repro.analysis.symbolic.fragments import decide_extraction
from repro.analysis.witness import replay_witness

SEEDS = range(60)
SIZES = range(2, 17)

_coverage = {"proved": 0, "refuted": 0, "unknown": 0}


# ----------------------------------------------------------------------
# Template generator: random wildcard-free SPMD sources
# ----------------------------------------------------------------------

def _safe_parity_ring(rng, tag):
    return [
        f"    right = (rank.rank + 1) % rank.size",
        f"    left = (rank.rank - 1) % rank.size",
        f"    if rank.rank % 2 == 0:",
        f"        yield rank.send(dest=right, tag={tag})",
        f"        yield rank.recv(source=left, tag={tag})",
        f"    else:",
        f"        yield rank.recv(source=left, tag={tag})",
        f"        yield rank.send(dest=right, tag={tag})",
    ]


def _guarded_ring(rng, tag):
    # All-send-first above the guard: deadlocks exactly at p >= guard.
    guard = rng.randrange(4, 13)
    return [
        f"    nxt = (rank.rank + 1) % rank.size",
        f"    prv = (rank.rank - 1) % rank.size",
        f"    if rank.size >= {guard}:",
        f"        yield rank.send(dest=nxt, tag={tag})",
        f"        yield rank.recv(source=prv, tag={tag})",
        f"    else:",
        f"        if rank.rank % 2 == 0:",
        f"            yield rank.send(dest=nxt, tag={tag})",
        f"            yield rank.recv(source=prv, tag={tag})",
        f"        else:",
        f"            yield rank.recv(source=prv, tag={tag})",
        f"            yield rank.send(dest=nxt, tag={tag})",
    ]


def _last_parity_sender(rng, tag):
    # The sender exists only at every other size: a p-dependent channel.
    parity = rng.randrange(2)
    return [
        f"    if rank.rank == 0:",
        f"        yield rank.recv(source=rank.size - 1, tag={tag})",
        f"    if rank.rank == rank.size - 1:",
        f"        if rank.rank % 2 == {parity}:",
        f"            yield rank.send(dest=0, tag={tag})",
    ]


def _gather_to_zero(rng, tag):
    return [
        f"    if rank.rank == 0:",
        f"        for i in range(1, rank.size):",
        f"            yield rank.recv(source=i, tag={tag})",
        f"    else:",
        f"        yield rank.send(dest=0, tag={tag})",
    ]


def _collective(rng, tag):
    return [f"    yield rank.allreduce(nbytes={8 * (1 + tag)})"]


_SAFE_BLOCKS = (_safe_parity_ring, _gather_to_zero, _collective)
_RISKY_BLOCKS = (_guarded_ring, _last_parity_sender)


def _generate_source(seed):
    """One random SPMD program; roughly half draw a risky block."""
    rng = random.Random(seed)
    blocks = [rng.choice(_SAFE_BLOCKS)]
    if rng.random() < 0.5:
        blocks.append(rng.choice(_RISKY_BLOCKS))
    if rng.random() < 0.5:
        blocks.append(rng.choice(_SAFE_BLOCKS))
    rng.shuffle(blocks)
    lines = [f"def prog_{seed}(rank):"]
    for tag, block in enumerate(blocks):
        lines += block(rng, tag)
    lines.append("    yield rank.finalize()")
    return "\n".join(lines) + "\n"


def _materialize(source, name):
    namespace = {}
    exec(compile(source, name, "exec"), namespace)
    fns = [v for v in namespace.values() if callable(v)]
    assert len(fns) == 1
    return fns[0]


def _ground_truth(fn, p):
    """The per-size verdict from the authoritative pipeline."""
    ext = extract_programs([fn] * p)
    res = decide_extraction(ext, label=f"gt@p={p}")
    assert res is not None, "wildcard-free template left the fragment"
    return res.verdict is Verdict.DEADLOCK_POSSIBLE


# ----------------------------------------------------------------------
# The agreement property
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
def test_prove_agrees_with_per_size_verification(seed):
    source = _generate_source(seed)
    name = f"prog_{seed}.py"
    results = prove_source(source, name)
    assert len(results) == 1
    result = results[0]

    # Honesty: a wildcard-free template is always classifiable.
    assert result.verdict is not ProveVerdict.UNDECIDABLE, result.reason

    fn = _materialize(source, name)
    deadlocks = {p: _ground_truth(fn, p) for p in SIZES}

    if result.verdict is ProveVerdict.PROVED_ALL_P:
        _coverage["proved"] += 1
        bad = [p for p in SIZES if deadlocks[p]]
        assert not bad, (
            f"seed {seed}: PROVED-ALL-P but deadlocks at p={bad}\n{source}"
        )
    elif result.verdict is ProveVerdict.REFUTED:
        _coverage["refuted"] += 1
        assert result.min_p is not None
        clean = [p for p in SIZES if p < result.min_p]
        wrong = [p for p in clean if deadlocks[p]]
        assert not wrong, (
            f"seed {seed}: min_p={result.min_p} is not minimal "
            f"(deadlocks at p={wrong})\n{source}"
        )
        if result.min_p in deadlocks:
            assert deadlocks[result.min_p], (
                f"seed {seed}: reported min_p={result.min_p} "
                f"does not deadlock\n{source}"
            )
        # The witness is replayable evidence, not just a claim.
        assert result.witness is not None
        outcome = replay_witness([fn] * result.min_p, result.witness)
        assert outcome.confirmed, (
            f"seed {seed}: witness did not replay at p={result.min_p}"
        )
    else:
        _coverage["unknown"] += 1
        # No all-p claim, but the swept sizes were asserted clean.
        wrong = [
            p for p in result.sizes_checked
            if p in deadlocks and deadlocks[p]
        ]
        assert not wrong, (
            f"seed {seed}: UNKNOWN sweep missed deadlocks at "
            f"p={wrong}\n{source}"
        )


def test_zz_both_verdicts_were_exercised():
    """Coverage floor: the templates must reach both outcomes."""
    assert _coverage["proved"] >= 10, _coverage
    assert _coverage["refuted"] >= 10, _coverage


def test_a_wildcard_program_is_never_proved():
    source = (
        "from repro.mpi.constants import ANY_SOURCE\n\n\n"
        "def storm(rank):\n"
        "    yield rank.recv(source=ANY_SOURCE, tag=0)\n"
        "    yield rank.finalize()\n"
    )
    result = prove_source(source, "storm.py")[0]
    assert result.verdict is ProveVerdict.UNDECIDABLE
    assert not result.is_proved
