"""Property: the transition system is confluent (Section 3.1).

Any maximal application order of the rules reaches the same terminal
state, and enabled rules are never disabled by other processes'
transitions (the paper's independence argument).
"""
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transition import TransitionSystem
from repro.mpi.blocking import BlockingSemantics
from repro.runtime import run_programs
from repro.workloads.randomgen import mutate_program_set, safe_program_set
from repro.util.errors import MpiUsageError


def _random_matched_trace(seed: int, mutated: bool):
    gen = safe_program_set(
        p=3, events=8, seed=seed, allow_wildcards=True,
        allow_collectives=True,
    )
    if mutated:
        gen = mutate_program_set(gen, seed=seed + 999, mutations=1)
    try:
        res = run_programs(
            gen.programs(),
            semantics=BlockingSemantics.relaxed(),
            seed=seed,
        )
    except MpiUsageError:
        return None
    return res.matched


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    walk_seed=st.integers(0, 10_000),
    mutated=st.booleans(),
)
def test_random_maximal_walks_reach_unique_terminal(seed, walk_seed, mutated):
    matched = _random_matched_trace(seed, mutated)
    if matched is None:
        return
    ts = TransitionSystem(matched)
    reference = ts.run()
    assert reference == ts.run_slow()

    rng = random.Random(walk_seed)
    state = ts.initial_state()
    steps = 0
    while True:
        enabled = ts.enabled_processes(state)
        if not enabled:
            break
        state = ts.step(state, rng.choice(enabled))
        steps += 1
        assert steps <= sum(ts.trace.lengths()) + 1
    assert state == reference


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), walk_seed=st.integers(0, 10_000))
def test_enabled_transitions_stay_enabled(seed, walk_seed):
    """If process k can advance, it still can after any other process
    advances (the independence/monotonicity property)."""
    matched = _random_matched_trace(seed, mutated=False)
    if matched is None:
        return
    ts = TransitionSystem(matched)
    rng = random.Random(walk_seed)
    state = ts.initial_state()
    while True:
        enabled = ts.enabled_processes(state)
        if not enabled:
            break
        mover = rng.choice(enabled)
        next_state = ts.step(state, mover)
        for k in enabled:
            if k != mover:
                assert ts.can_advance(next_state, k), (
                    f"advancing {mover} disabled {k} in {state}"
                )
        state = next_state


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), mutated=st.booleans())
def test_blocked_set_of_terminal_is_schedule_independent(seed, mutated):
    matched = _random_matched_trace(seed, mutated)
    if matched is None:
        return
    ts = TransitionSystem(matched)
    term = ts.run()
    blocked_fast = ts.blocked_processes(term)
    blocked_slow = ts.blocked_processes(ts.run_slow())
    assert blocked_fast == blocked_slow
