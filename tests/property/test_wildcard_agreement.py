"""Explorer verdicts must agree with the runtime on wildcard programs.

`repro lint`'s deterministic matcher refuses wildcard programs; the
match-set explorer (`repro verify`) covers them by enumerating every
feasible wildcard matching. This suite pins down the two directions of
that claim on random wildcard program sets:

* **deadlock-possible is a true positive** — the emitted witness
  schedule replays through the strict-semantics engine into a real
  runtime deadlock, and the runtime WFG analysis blames the same
  ranks; and
* **deadlock-free is a true negative** — no random strict-semantics
  schedule (scheduler seed and wildcard matching both randomized) can
  produce a deadlock the exploration missed.

Program sets with static consistency ERRORs are excluded the same way
``repro verify`` excludes them (fix the errors first); the final
coverage test asserts the suite still exercises enough programs and
both verdicts.
"""
import pytest

from repro.analysis import (
    ExplorationUnsupported,
    Verdict,
    check_collective_consistency,
    check_request_typestate,
    explore_extraction,
    extract_programs,
    replay_witness,
)
from repro.checks.findings import Severity
from repro.workloads.randomgen import mutate_program_set, safe_program_set
from tests.conftest import run_strict

SAFE_SEEDS = range(45)
MUTATED_SEEDS = range(25)
#: Random strict schedules each deadlock-free verdict must survive.
RUNTIME_SCHEDULES = 5
MAX_STATES = 20_000


def _generate(seed):
    p = 2 + seed % 3
    events = 8 + seed % 7
    return safe_program_set(p, events, seed, allow_wildcards=True)


def _mutate(seed):
    return mutate_program_set(
        _generate(seed), seed + 10_000, mutations=1 + seed % 3
    )


def _classify(generated):
    """(verdict tag, ExploreResult or None) mirroring ``repro verify``."""
    ext = extract_programs(generated.programs())
    if ext.truncated or not (ext.exact or ext.wildcard_exact):
        return "inexact", None
    findings = check_request_typestate(ext.sequences)
    findings += check_collective_consistency(
        ext.sequences, ext.comms, hung_ranks=ext.truncated
    )
    if any(f.severity is Severity.ERROR for f in findings):
        return "check-error", None
    try:
        result = explore_extraction(ext, max_states=MAX_STATES)
    except ExplorationUnsupported:
        return "unsupported", None
    if result.verdict is Verdict.BOUND_EXCEEDED:
        return "bound-exceeded", None
    return result.verdict.value, result


def _check_agreement(generated, seed):
    tag, result = _classify(generated)
    if result is None:
        pytest.skip(f"seed {seed}: {tag}")
    if result.verdict is Verdict.DEADLOCK_POSSIBLE:
        outcome = replay_witness(generated.programs(), result.witness)
        assert outcome.confirmed, (
            f"seed {seed}: witness did not replay to the predicted "
            f"deadlock: {outcome.reason}"
        )
    else:
        assert result.verdict is Verdict.DEADLOCK_FREE
        for sched_seed in range(RUNTIME_SCHEDULES):
            run = run_strict(generated.programs(), seed=sched_seed)
            assert not run.deadlocked, (
                f"seed {seed}: explorer said deadlock-free but runtime "
                f"schedule {sched_seed} deadlocked in ranks "
                f"{sorted(run.hung)}"
            )
    return tag


@pytest.mark.parametrize("seed", SAFE_SEEDS)
def test_safe_wildcard_sets_agree_with_the_runtime(seed):
    # "Safe" generation still leaves real races: the wildcard matching
    # the generator intended is not the only feasible one, so both
    # verdicts occur and both must hold up.
    _check_agreement(_generate(seed), seed)


@pytest.mark.parametrize("seed", MUTATED_SEEDS)
def test_mutated_wildcard_sets_agree_with_the_runtime(seed):
    _check_agreement(_mutate(seed), seed)


def test_enough_programs_and_both_verdicts_covered():
    tags = {"deadlock-free": 0, "deadlock-possible": 0}
    skipped = 0
    for generated in (
        [_generate(s) for s in SAFE_SEEDS]
        + [_mutate(s) for s in MUTATED_SEEDS]
    ):
        tag, _ = _classify(generated)
        if tag in tags:
            tags[tag] += 1
        else:
            skipped += 1
    conclusive = sum(tags.values())
    # The satellite bar: ~40 random wildcard programs actually decided.
    assert conclusive >= 40, (tags, skipped)
    assert tags["deadlock-possible"] >= 10
    assert tags["deadlock-free"] >= 10
