"""Property: trace serialization round-trips and preserves verdicts."""
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TransitionSystem, analyze_trace
from repro.mpi.blocking import BlockingSemantics
from repro.mpi.serialize import (
    matched_trace_from_dict,
    matched_trace_to_dict,
)
from repro.runtime import run_programs
from repro.util.errors import MpiUsageError
from repro.workloads.randomgen import mutate_program_set, safe_program_set


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    mutated=st.booleans(),
    wildcards=st.booleans(),
)
def test_roundtrip_preserves_everything(seed, mutated, wildcards):
    gen = safe_program_set(
        p=4, events=12, seed=seed, allow_wildcards=wildcards
    )
    if mutated:
        gen = mutate_program_set(gen, seed=seed + 1, mutations=1)
    try:
        res = run_programs(
            gen.programs(),
            semantics=BlockingSemantics.relaxed(),
            seed=seed,
        )
    except MpiUsageError:
        return
    original = res.matched
    blob = json.dumps(matched_trace_to_dict(original))
    restored = matched_trace_from_dict(json.loads(blob))

    # Structure preserved exactly.
    assert restored.trace.lengths() == original.trace.lengths()
    for rank in range(original.trace.num_processes):
        for a, b in zip(
            original.trace.sequence(rank), restored.trace.sequence(rank)
        ):
            assert a == b
    assert restored.send_of == original.send_of
    assert restored.probe_match == original.probe_match
    assert restored.request_op == original.request_op
    a = sorted((c.comm_id, tuple(sorted(c.members)))
               for c in original.collectives)
    b = sorted((c.comm_id, tuple(sorted(c.members)))
               for c in restored.collectives)
    assert a == b

    # Analyses agree on the restored trace.
    assert TransitionSystem(restored).run() == TransitionSystem(
        original
    ).run()
    assert (
        analyze_trace(restored, generate_outputs=False).deadlocked
        == analyze_trace(original, generate_outputs=False).deadlocked
    )


def test_version_guard():
    import pytest

    from repro.util.errors import TraceError

    with pytest.raises(TraceError):
        matched_trace_from_dict({"format": 99, "num_processes": 1,
                                 "ranks": [[]]})


def test_file_roundtrip(tmp_path):
    from repro.mpi.serialize import load_trace, save_trace
    from repro.workloads import build_stress_trace

    matched = build_stress_trace(4, iterations=6)
    path = tmp_path / "trace.json"
    save_trace(matched, str(path))
    restored = load_trace(str(path))
    assert restored.send_of == matched.send_of
    assert TransitionSystem(restored).run() == TransitionSystem(
        matched
    ).run()
