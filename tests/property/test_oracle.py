"""Property: detector verdicts against runtime ground truth.

* Safe-by-construction programs never hang, and neither analysis
  reports a deadlock on their traces (no false positives).
* For arbitrary (mutated) programs, the centralized analysis and the
  distributed tool both agree exactly with whether the strict-semantics
  execution hung (soundness and completeness on observed executions).
* The distributed stable state always equals the formal terminal state.
"""
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    TransitionSystem,
    analyze_trace,
    detect_deadlocks_distributed,
)
from repro.mpi.blocking import BlockingSemantics
from repro.runtime import run_programs
from repro.util.errors import MpiUsageError
from repro.workloads.randomgen import mutate_program_set, safe_program_set


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    p=st.integers(2, 5),
    run_seed=st.integers(0, 1_000),
)
def test_safe_programs_are_clean_everywhere(seed, p, run_seed):
    gen = safe_program_set(p=p, events=12, seed=seed)
    res = run_programs(
        gen.programs(), semantics=BlockingSemantics.strict(), seed=run_seed
    )
    assert not res.deadlocked, res.hung_descriptions()
    analysis = analyze_trace(res.matched, generate_outputs=False)
    assert not analysis.has_deadlock
    out = detect_deadlocks_distributed(
        res.matched, fan_in=2, seed=run_seed, generate_outputs=False
    )
    assert not out.has_deadlock
    assert out.stable_state == TransitionSystem(res.matched).run()


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    mut_seed=st.integers(0, 100_000),
    run_seed=st.integers(0, 1_000),
    fan_in=st.sampled_from([2, 3, 4]),
)
def test_mutated_programs_verdict_matches_ground_truth(
    seed, mut_seed, run_seed, fan_in
):
    gen = safe_program_set(p=4, events=10, seed=seed)
    mut = mutate_program_set(gen, seed=mut_seed, mutations=2)
    try:
        res = run_programs(
            mut.programs(),
            semantics=BlockingSemantics.strict(),
            seed=run_seed,
        )
    except MpiUsageError:
        return  # collective misuse: correctly rejected upstream
    analysis = analyze_trace(res.matched, generate_outputs=False)
    assert analysis.has_deadlock == res.deadlocked
    out = detect_deadlocks_distributed(
        res.matched, fan_in=fan_in, seed=run_seed, generate_outputs=False
    )
    assert out.has_deadlock == res.deadlocked
    assert out.stable_state == TransitionSystem(res.matched).run()
    if res.deadlocked:
        # Completeness: every hung rank is either reported deadlocked
        # or reached MPI_Finalize (the paper's designated terminal
        # operation — the runtime synchronizes finalize, the analysis
        # treats arriving there as finishing).
        ts = TransitionSystem(res.matched)
        finished = ts.finished_processes(out.stable_state)
        assert set(res.hung) <= set(out.deadlocked) | finished


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    run_seed=st.integers(0, 1_000),
)
def test_wildcard_traces_distributed_equals_centralized(seed, run_seed):
    gen = safe_program_set(
        p=4, events=12, seed=seed, allow_wildcards=True
    )
    res = run_programs(
        gen.programs(),
        semantics=BlockingSemantics.relaxed(),
        seed=run_seed,
    )
    term = TransitionSystem(res.matched).run()
    out = detect_deadlocks_distributed(
        res.matched, fan_in=2, seed=run_seed, generate_outputs=False
    )
    assert out.stable_state == term
    analysis = analyze_trace(res.matched, generate_outputs=False)
    assert set(out.deadlocked) == set(analysis.deadlocked)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    schedule_seeds=st.lists(st.integers(0, 999), min_size=2, max_size=4,
                            unique=True),
)
def test_verdict_independent_of_delivery_schedule(seed, schedule_seeds):
    """The distributed tool's result must not depend on message timing."""
    gen = safe_program_set(p=4, events=10, seed=seed)
    mut = mutate_program_set(gen, seed=seed + 7, mutations=1)
    try:
        res = run_programs(
            mut.programs(), semantics=BlockingSemantics.strict(), seed=0
        )
    except MpiUsageError:
        return
    outcomes = set()
    states = set()
    for s in schedule_seeds:
        out = detect_deadlocks_distributed(
            res.matched, fan_in=2, seed=s, generate_outputs=False
        )
        outcomes.add(out.deadlocked)
        states.add(out.stable_state)
    assert len(outcomes) == 1
    assert len(states) == 1


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    det_seed=st.integers(0, 10_000),
    n_detections=st.integers(1, 12),
)
def test_midrun_detections_never_false_positive(seed, det_seed, n_detections):
    """Consistent-state detections fired at arbitrary times during a
    deadlock-free run must never report a deadlock (Sections 3.2/5)."""
    import random as _random

    from repro.core.detector import DistributedDeadlockDetector

    gen = safe_program_set(p=4, events=10, seed=seed)
    res = run_programs(
        gen.programs(), semantics=BlockingSemantics.strict(), seed=0
    )
    assert not res.deadlocked
    rng = _random.Random(det_seed)
    span = 1e-6 * gen.total_actions() * 4
    times = sorted(rng.uniform(0, span * 1.5) for _ in range(n_detections))
    detector = DistributedDeadlockDetector(
        res.matched, fan_in=2, seed=det_seed, generate_outputs=False
    )
    out = detector.run(detect_at=times, detect_at_end=True)
    for record in out.detections:
        assert not record.has_deadlock, (
            seed, det_seed, record.detection_id,
            {r: c.op_description for r, c in record.conditions.items()},
        )
    assert out.stable_state == TransitionSystem(res.matched).run()
