"""The static verdict must never contradict the runtime verdict.

For deterministic (wildcard-free, straight-line) random programs the
sequential static model and the virtual runtime under the strict
blocking semantics ``b`` analyze the *same* unique matching, so their
deadlock verdicts must agree exactly:

* safe-by-construction program sets are clean in both worlds;
* mutated (maybe-deadlocking) sets either deadlock in both with the
  same set of deadlocked ranks, or complete in both — and when the
  engine rejects a program outright (collective mismatch), the static
  consistency checks must already have reported an error.

This is the agreement property ``repro lint`` rests on: a static
``static-deadlock`` finding is a true positive and a clean static
report is a true negative, for every program the model covers.
"""
import pytest

from repro.analysis import (
    check_collective_consistency,
    check_request_typestate,
    extract_programs,
    match_sequences,
)
from repro.checks.findings import Severity
from repro.core.waitstate import analyze_trace
from repro.mpi.blocking import BlockingSemantics
from repro.util.errors import ReproError
from repro.workloads.randomgen import mutate_program_set, safe_program_set
from tests.conftest import run_strict

SAFE_SEEDS = range(25)
MUTATED_SEEDS = range(35)


def _generate(seed):
    p = 2 + seed % 4
    events = 10 + seed % 9
    return safe_program_set(p, events, seed, allow_wildcards=False)


def _static_verdict(generated):
    """Extract + check + replay; returns (match result, error findings)."""
    ext = extract_programs(generated.programs())
    assert ext.exact, "wildcard-free straight-line programs extract exactly"
    assert not ext.truncated
    findings = check_request_typestate(ext.sequences)
    findings += check_collective_consistency(
        ext.sequences, ext.comms, hung_ranks=ext.truncated
    )
    result = match_sequences(ext.sequences, ext.comms)
    assert result.applicable
    errors = [f for f in findings if f.severity is Severity.ERROR]
    return result, errors


def _runtime_deadlocked(generated):
    """Ground truth: execute under strict ``b`` and analyze the trace."""
    res = run_strict(generated.programs())
    if not res.deadlocked:
        return frozenset()
    analysis = analyze_trace(
        res.matched,
        semantics=BlockingSemantics.strict(),
        generate_outputs=False,
    )
    return frozenset(analysis.deadlocked)


@pytest.mark.parametrize("seed", SAFE_SEEDS)
def test_safe_sets_are_clean_in_both_worlds(seed):
    generated = _generate(seed)
    static, errors = _static_verdict(generated)
    assert not errors
    assert not static.has_deadlock
    assert _runtime_deadlocked(generated) == frozenset()


@pytest.mark.parametrize("seed", MUTATED_SEEDS)
def test_mutated_sets_agree_with_the_runtime(seed):
    generated = mutate_program_set(
        _generate(seed), seed + 10_000, mutations=1 + seed % 3
    )
    static, errors = _static_verdict(generated)
    try:
        runtime = _runtime_deadlocked(generated)
    except ReproError:
        # The engine rejected the program (e.g. a collective kind or
        # root mismatch): the static checks must already say ERROR.
        assert errors, "engine rejected program but static pass was clean"
        return
    assert static.has_deadlock == bool(runtime), (
        f"static verdict {static.deadlocked} contradicts runtime "
        f"verdict {sorted(runtime)} for seed {seed}"
    )
    if static.has_deadlock:
        assert set(static.deadlocked) == set(runtime)


def test_enough_programs_covered():
    # The acceptance bar: at least 50 deterministic random programs.
    assert len(SAFE_SEEDS) + len(MUTATED_SEEDS) >= 50
