"""Shared fixtures and helpers for the test suite."""
from __future__ import annotations

import pytest

from repro.mpi.blocking import BlockingSemantics
from repro.mpi.constants import OpKind
from repro.mpi.ops import Operation
from repro.runtime import run_programs


@pytest.fixture
def strict():
    return BlockingSemantics.strict()


@pytest.fixture
def relaxed():
    return BlockingSemantics.relaxed()


def op(kind: OpKind, rank: int, ts: int, **kw) -> Operation:
    """Terse Operation builder for tests."""
    return Operation(kind=kind, rank=rank, ts=ts, **kw)


def run_relaxed(programs, seed=0, **kw):
    return run_programs(
        programs, semantics=BlockingSemantics.relaxed(), seed=seed, **kw
    )


def run_strict(programs, seed=0, **kw):
    return run_programs(
        programs, semantics=BlockingSemantics.strict(), seed=seed, **kw
    )
