"""Additional runtime-engine coverage: test loops, more collectives,
determinism, and resource guards."""
import pytest

from repro.core import TransitionSystem, analyze_trace
from repro.mpi.blocking import BlockingSemantics
from repro.mpi.constants import PROC_NULL, OpKind
from repro.runtime import run_programs
from repro.util.errors import MpiUsageError, ReproError

from tests.conftest import run_relaxed, run_strict


class TestTestFamilies:
    def test_testall_polling_loop(self):
        def p0(r):
            r1 = yield r.irecv(source=1, tag=1)
            r2 = yield r.irecv(source=1, tag=2)
            flag, statuses = yield r.testall([r1, r2])
            while not flag:
                flag, statuses = yield r.testall([r1, r2])
            assert {s.tag for s in statuses} == {1, 2}
            yield r.finalize()

        def p1(r):
            yield r.send(dest=0, tag=1)
            yield r.send(dest=0, tag=2)
            yield r.finalize()

        res = run_relaxed([p0, p1], seed=3)
        assert not res.deadlocked
        # The trace records flag outcomes on the test ops.
        tests = [op for op in res.trace.sequence(0)
                 if op.kind is OpKind.TESTALL]
        assert tests[-1].test_flag
        assert tests[-1].completed_indices == (0, 1)

    def test_testsome_collects_ready_subset(self):
        def p0(r):
            reqs = []
            for tag in (1, 2, 3):
                reqs.append((yield r.irecv(source=1, tag=tag)))
            got = set()
            remaining = list(reqs)
            while remaining:
                idx, statuses = yield r.testsome(remaining)
                got.update(s.tag for s in statuses)
                remaining = [q for i, q in enumerate(remaining)
                             if i not in idx]
                if remaining and not idx:
                    # Yield a no-op call so the runtime can progress.
                    yield r.iprobe(source=1)
            assert got == {1, 2, 3}
            yield r.finalize()

        def p1(r):
            for tag in (1, 2, 3):
                yield r.send(dest=0, tag=tag)
            yield r.finalize()

        res = run_relaxed([p0, p1], seed=5)
        assert not res.deadlocked

    def test_testany_returns_flag_and_index(self):
        def p0(r):
            r1 = yield r.irecv(source=1, tag=7)
            flag, idx, status = yield r.testany([r1])
            while not flag:
                flag, idx, status = yield r.testany([r1])
            assert idx == 0 and status.tag == 7
            yield r.finalize()

        def p1(r):
            yield r.send(dest=0, tag=7)
            yield r.finalize()

        res = run_relaxed([p0, p1], seed=1)
        assert not res.deadlocked


class TestMoreCollectives:
    @pytest.mark.parametrize("name", ["scan", "reduce_scatter", "allgather",
                                      "alltoall", "gather", "scatter"])
    def test_kind_runs_and_analyzes_clean(self, name):
        def prog(r):
            call = getattr(r, name)
            if name in ("gather", "scatter"):
                yield call(root=0)
            else:
                yield call()
            yield r.finalize()

        res = run_strict([prog] * 4, seed=2)
        assert not res.deadlocked
        assert not analyze_trace(res.matched,
                                 generate_outputs=False).has_deadlock

    def test_relaxed_bcast_root_leaves_early(self):
        def root(r):
            yield r.bcast(root=0)
            yield r.send(dest=1)  # only reachable if bcast let it go
            yield r.finalize()

        def other(r):
            yield r.recv(source=0)
            yield r.bcast(root=0)
            yield r.finalize()

        res = run_relaxed([root, other])
        assert not res.deadlocked
        assert run_strict([root, other]).deadlocked

    def test_missing_collective_participant_hangs(self):
        def present(r):
            yield r.allreduce()
            yield r.finalize()

        def absent(r):
            yield r.finalize()

        res = run_relaxed([present, present, absent])
        assert res.deadlocked
        analysis = analyze_trace(res.matched, generate_outputs=False)
        assert set(analysis.deadlocked) == {0, 1}
        # Both blocked ranks wait exactly on the absent one.
        for cond in analysis.conditions.values():
            assert cond.target_ranks() == {2}


class TestEdgeBehaviour:
    def test_irecv_from_proc_null_completes(self):
        def p0(r):
            req = yield r.irecv(source=PROC_NULL)
            status = yield r.wait(req)
            assert status.source == PROC_NULL
            yield r.finalize()

        res = run_strict([p0])
        assert not res.deadlocked

    def test_engine_step_budget(self):
        def spinner(r):
            while True:
                yield r.iprobe(source=1)

        def other(r):
            yield r.finalize()

        with pytest.raises(ReproError):
            run_relaxed([spinner, other], max_steps=500)

    def test_collective_on_foreign_communicator_rejected(self):
        from repro.mpi.communicator import Communicator

        foreign = Communicator(0, (0,))  # rank 1 is not a member

        def p0(r):
            if r.rank == 1:
                yield r.barrier(comm=foreign)
            yield r.finalize()

        with pytest.raises(MpiUsageError):
            run_relaxed([p0, p0])

    def test_undefined_split_color_yields_none(self):
        seen = {}

        def p0(r):
            sub = yield r.comm_split(color=0 if r.rank == 0 else None)
            seen[r.rank] = sub
            yield r.finalize()

        res = run_relaxed([p0, p0])
        assert not res.deadlocked
        assert seen[1] is None  # MPI_UNDEFINED -> MPI_COMM_NULL
        assert seen[0] is not None and seen[0].group == (0,)

    def test_trace_determinism_across_identical_runs(self):
        from repro.workloads import master_worker_programs

        a = run_relaxed(master_worker_programs(5), seed=77)
        b = run_relaxed(master_worker_programs(5), seed=77)
        assert a.matched.send_of == b.matched.send_of
        for rank in range(5):
            ops_a = [op.describe() for op in a.trace.sequence(rank)]
            ops_b = [op.describe() for op in b.trace.sequence(rank)]
            assert ops_a == ops_b

    def test_distinct_seeds_change_wildcard_interleavings(self):
        from repro.workloads import master_worker_programs

        orders = set()
        for seed in range(8):
            res = run_relaxed(master_worker_programs(5), seed=seed)
            order = tuple(
                op.observed_peer for op in res.trace.sequence(0)
                if op.kind is OpKind.RECV and op.tag == 1
            )
            orders.add(order)
        assert len(orders) > 1


class TestCommCreate:
    def test_members_get_new_communicator(self):
        seen = {}

        def prog(r):
            sub = yield r.comm_create([1, 3])
            seen[r.rank] = sub
            if sub is not None:
                yield r.allreduce(comm=sub)
            yield r.finalize()

        res = run_relaxed([prog] * 4, seed=2)
        assert not res.deadlocked
        assert seen[0] is None and seen[2] is None
        assert seen[1].group == (1, 3)
        assert seen[1] is seen[3]

    def test_differing_groups_is_usage_error(self):
        def prog(r):
            group = [0, 1] if r.rank == 0 else [0, 1, 2]
            yield r.comm_create(group)
            yield r.finalize()

        with pytest.raises(MpiUsageError):
            run_relaxed([prog] * 3)

    def test_subgroup_collective_deadlock_detected(self):
        """A member skipping the subgroup barrier deadlocks the rest."""

        def prog(r):
            sub = yield r.comm_create([0, 1, 2])
            if sub is not None and r.rank != 2:
                yield r.barrier(comm=sub)
            yield r.finalize()

        res = run_relaxed([prog] * 4, seed=0)
        assert res.deadlocked
        from repro.core import analyze_trace

        analysis = analyze_trace(res.matched, generate_outputs=False)
        assert set(analysis.deadlocked) == {0, 1}
        for cond in analysis.conditions.values():
            assert cond.target_ranks() == {2}
