"""Unit tests for live telemetry: LiveMonitor, HealthEngine, exporters."""
import json

import pytest

from repro.obs import (
    DEADLOCK_CONFIRMED,
    LIVE_FORMAT,
    PROGRESSING,
    SOFT_HANG,
    HealthEngine,
    HealthVerdict,
    LiveMonitor,
    feed_exit_code,
    is_live_artifact,
    load_live_feed,
    make_observer,
    openmetrics_text,
    render_health_table,
    render_health_timeline,
)
from repro.util.errors import TraceError


def _engine_snapshot(dwell, blocked=None, ranks=4):
    return {
        "engine": {
            "steps": 100,
            "ranks": ranks,
            "dwell_steps": dwell,
            "blocked": blocked or {},
        },
        "tracer": {"events": 0, "dropped": 0},
    }


class TestHealthEngine:
    def test_progressing_when_no_dwell(self):
        health = HealthEngine()
        verdict = health.evaluate(_engine_snapshot({}))
        assert verdict.state == PROGRESSING
        assert verdict.code == 0

    def test_floor_suppresses_short_waits(self):
        health = HealthEngine(stall_floor_steps=64)
        verdict = health.evaluate(_engine_snapshot({0: 63, 1: 10}))
        assert verdict.state == PROGRESSING

    def test_stall_over_floor_is_soft_hang_with_attribution(self):
        health = HealthEngine(stall_floor_steps=64)
        verdict = health.evaluate(
            _engine_snapshot(
                {2: 500}, blocked={2: {"op": "RECV", "peer": 7}}
            )
        )
        assert verdict.state == SOFT_HANG
        assert verdict.suspects == (2,)
        assert verdict.waiting_on == {2: 7}
        assert any("rank 2" in r for r in verdict.reasons)

    def test_adaptive_threshold_tracks_own_history(self):
        # A rank that always dwells ~100 steps must not alarm at 100,
        # but a 10x departure from its own history must.
        health = HealthEngine(
            stall_floor_steps=8, min_history=4, stall_factor=4.0
        )
        for _ in range(6):
            verdict = health.evaluate(_engine_snapshot({0: 100}))
        assert verdict.state == PROGRESSING  # 100 < 100 * 4
        verdict = health.evaluate(_engine_snapshot({0: 1000}))
        assert verdict.state == SOFT_HANG

    def test_evaluate_never_confirms_deadlock(self):
        health = HealthEngine(stall_floor_steps=1)
        for _ in range(20):
            verdict = health.evaluate(_engine_snapshot({0: 10_000}))
            assert verdict.state in (PROGRESSING, SOFT_HANG)

    def test_skew_and_backpressure_reasons(self):
        health = HealthEngine(skew_threshold=4.0, backpressure_depth=10)
        verdict = health.evaluate(
            {
                "backend": {"skew": 9.5, "pending": [0, 50]},
                "tracer": {"events": 0, "dropped": 0},
            }
        )
        assert verdict.state == PROGRESSING  # alarms, not suspects
        text = " ".join(verdict.reasons)
        assert "skew" in text and "backpressure" in text

    def test_drop_rate_alarm_uses_window_delta(self):
        health = HealthEngine(drop_rate_threshold=0.01)
        health.evaluate({"tracer": {"events": 1000, "dropped": 0}})
        verdict = health.evaluate(
            {"tracer": {"events": 1500, "dropped": 100}}
        )
        assert any("dropping" in r for r in verdict.reasons)
        # No new drops in the next window: the alarm clears.
        verdict = health.evaluate(
            {"tracer": {"events": 2000, "dropped": 100}}
        )
        assert not any("dropping" in r for r in verdict.reasons)

    def test_finalize_confirms_only_with_outcome(self):
        class Outcome:
            has_deadlock = True
            deadlocked = (1, 3)

        health = HealthEngine()
        verdict = health.finalize(outcome=Outcome())
        assert verdict.state == DEADLOCK_CONFIRMED
        assert verdict.roots == (1, 3)
        assert verdict.code == 2

    def test_finalize_hung_run_without_outcome_stays_soft(self):
        class Run:
            deadlocked = True
            hung = {2: None, 0: None}

        verdict = HealthEngine().finalize(run=Run())
        assert verdict.state == SOFT_HANG
        assert verdict.suspects == (0, 2)
        assert any("awaiting WFG" in r for r in verdict.reasons)

    def test_finalize_clean_run(self):
        health = HealthEngine()
        health.evaluate(_engine_snapshot({}))
        verdict = health.finalize()
        assert verdict.state == PROGRESSING

    def test_verdict_json_round_trip(self):
        verdict = HealthVerdict(
            state=SOFT_HANG,
            suspects=(1,),
            reasons=("r",),
            waiting_on={1: 2},
        )
        assert HealthVerdict.from_json(
            json.loads(json.dumps(verdict.to_json()))
        ) == verdict


class TestLiveMonitor:
    def test_ticks_stream_snapshots_and_callbacks(self):
        docs = []
        monitor = LiveMonitor(
            observer=make_observer(True), on_snapshot=docs.append
        )
        monitor.attach_engine(4)
        monitor.tick_engine(
            {"steps": 10, "ranks": 4, "dwell_steps": {}, "blocked": {}}
        )
        monitor.tick_backend({"round": 1, "shards": 2, "pending": [0, 0]})
        assert [d["phase"] for d in docs] == ["engine", "backend"]
        assert all(d["format"] == LIVE_FORMAT for d in docs)
        assert docs[0]["seq"] == 0 and docs[1]["seq"] == 1
        assert "health" in docs[0] and "metrics" in docs[0]

    def test_feed_file_round_trip(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        monitor = LiveMonitor(
            observer=make_observer(True), feed_path=str(feed)
        )
        monitor.attach_engine(2)
        monitor.tick_engine(
            {"steps": 5, "ranks": 2, "dwell_steps": {}, "blocked": {}}
        )
        verdict = monitor.finalize()
        assert verdict.state == PROGRESSING
        assert is_live_artifact(str(feed))
        header, snapshots, final = load_live_feed(str(feed))
        assert header["ranks"] == 2
        assert len(snapshots) == 1
        assert final["verdict"]["state"] == PROGRESSING
        assert feed_exit_code(final) == 0

    def test_finalize_idempotent_and_exit_codes(self):
        class Outcome:
            has_deadlock = True
            deadlocked = (0,)

        monitor = LiveMonitor(observer=make_observer(True))
        verdict = monitor.finalize(outcome=Outcome())
        assert verdict.state == DEADLOCK_CONFIRMED
        assert monitor.exit_code() == 2
        assert monitor.finalize() is verdict

    def test_rate_limit_skips_fast_ticks(self):
        monitor = LiveMonitor(
            observer=make_observer(True), min_interval_us=60e6
        )
        sample = {"steps": 1, "ranks": 1, "dwell_steps": {}, "blocked": {}}
        monitor.tick_engine(sample)
        monitor.tick_engine(sample)
        assert len(monitor.snapshots) == 1

    def test_load_live_feed_diagnoses_malformed(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            json.dumps({"format": LIVE_FORMAT, "kind": "header"})
            + "\n{{{\n"
        )
        with pytest.raises(TraceError, match="bad.jsonl:2"):
            load_live_feed(str(bad))
        other = tmp_path / "other.jsonl"
        other.write_text('{"format": "repro-stats/1"}\n')
        assert not is_live_artifact(str(other))
        with pytest.raises(TraceError):
            load_live_feed(str(other))
        assert not is_live_artifact(str(tmp_path / "missing.jsonl"))

    def test_render_helpers_produce_lines(self):
        docs = []
        monitor = LiveMonitor(
            observer=make_observer(True), on_snapshot=docs.append
        )
        monitor.tick_engine(
            {
                "steps": 100,
                "ranks": 2,
                "dwell_steps": {0: 90},
                "blocked": {0: {"op": "RECV", "peer": 1}},
            }
        )
        table = "\n".join(render_health_table(docs[0]))
        assert "SOFT-HANG" in table and "suspects: 0" in table
        timeline = "\n".join(render_health_timeline(monitor.snapshots))
        assert "health timeline" in timeline and "step 100" in timeline


class TestOpenMetrics:
    def test_counter_gauge_histogram_families(self):
        observer = make_observer(True)
        observer.metrics.inc("tbon.sent_total", 5)
        observer.metrics.set_gauge("tbon.queue_depth", 3.0)
        observer.metrics.observe("detection.phase.sync", 0.25)
        text = openmetrics_text(observer.metrics.snapshot())
        assert "# TYPE repro_tbon_sent_total counter" in text
        assert "repro_tbon_sent_total_total 5" in text
        assert "repro_tbon_queue_depth 3" in text
        assert "repro_tbon_queue_depth_max 3" in text
        assert 'quantile="0.5"' in text
        assert "repro_detection_phase_sync_count 1" in text
        assert text.endswith("# EOF\n")

    def test_extra_gauges_and_name_sanitization(self):
        text = openmetrics_text(
            {"counters": {"1bad.name!": 2}},
            extra_gauges={"health_state": 1.0},
        )
        assert "repro__1bad_name__total 2" in text
        assert "repro_health_state 1" in text

    def test_every_line_matches_exposition_grammar(self):
        observer = make_observer(True)
        observer.metrics.inc("a.b", 1)
        observer.metrics.observe("c", 2.0)
        for line in openmetrics_text(
            observer.metrics.snapshot()
        ).splitlines():
            assert line.startswith("#") or " " in line
