"""Bounded match-set exploration (`repro.analysis.explore`)."""
import pytest

from repro.analysis import (
    ExplorationUnsupported,
    Verdict,
    explore_extraction,
    explore_sequences,
    extract_programs,
)
from repro.mpi.constants import ANY_SOURCE
from repro.obs.metrics import MetricsRegistry
from repro.workloads import (
    wildcard_deadlock_programs,
    wildcard_master_worker_programs,
    wildcard_stress_programs,
)


def _explore(programs, **kwargs):
    return explore_extraction(extract_programs(list(programs)), **kwargs)


# ----------------------------------------------------------------------
# Verdicts
# ----------------------------------------------------------------------

class TestVerdicts:
    def test_master_worker_is_deadlock_possible(self):
        result = _explore(wildcard_master_worker_programs())
        assert result.verdict is Verdict.DEADLOCK_POSSIBLE
        assert result.has_deadlock
        # Only the wrong wildcard matching deadlocks: the master and the
        # rendezvous sender whose message it stole.
        assert set(result.deadlocked) == {0, 2}

    def test_master_worker_witness_pins_the_bad_matching(self):
        result = _explore(wildcard_master_worker_programs())
        witness = result.witness
        assert witness is not None
        # The deadlock requires the wildcard (rank 0, ts 0) to take the
        # message from rank 1, starving the directed Recv(source=1).
        assert witness.pinnings == {(0, 0): 1}
        assert witness.schedule == [0, 1, 0, 1, 2]
        assert witness.num_ranks == 3
        assert set(witness.deadlocked) == {0, 2}

    def test_master_worker_fixed_is_deadlock_free(self):
        # Same shape, but both receives are wildcards -> any matching
        # order drains both senders.
        def master(rank):
            yield rank.recv(source=ANY_SOURCE, tag=0)
            yield rank.recv(source=ANY_SOURCE, tag=0)
            yield rank.finalize()

        def worker(rank):
            yield rank.send(0, tag=0)
            yield rank.finalize()

        result = _explore([master, worker, worker])
        assert result.verdict is Verdict.DEADLOCK_FREE
        assert result.witness is None
        assert not result.has_deadlock

    def test_fig10_wildcard_ring_deadlocks_every_rank(self):
        result = _explore(wildcard_deadlock_programs(8))
        assert result.verdict is Verdict.DEADLOCK_POSSIBLE
        assert sorted(result.deadlocked) == list(range(8))

    def test_directed_sendrecv_mismatch_is_found_without_wildcards(self):
        # Both ranks recv first under strict (rendezvous) semantics.
        def prog(rank):
            peer = 1 - rank.rank
            yield rank.recv(source=peer, tag=0)
            yield rank.send(peer, tag=0)
            yield rank.finalize()

        result = _explore([prog, prog])
        assert result.verdict is Verdict.DEADLOCK_POSSIBLE
        assert sorted(result.deadlocked) == [0, 1]

    def test_missing_collective_blocks_only_the_caller(self):
        def caller(rank):
            yield rank.barrier()
            yield rank.finalize()

        def skipper(rank):
            yield rank.finalize()

        result = _explore([caller, skipper])
        assert result.verdict is Verdict.DEADLOCK_POSSIBLE
        # Finalize-parked ranks are finished, not blocked; only the
        # barrier caller is deadlocked.
        assert sorted(result.deadlocked) == [0]


# ----------------------------------------------------------------------
# Bounds
# ----------------------------------------------------------------------

class TestBounds:
    def test_state_bound_is_not_deadlock_free(self):
        result = _explore(wildcard_master_worker_programs(), max_states=2)
        assert result.verdict is Verdict.BOUND_EXCEEDED
        assert result.verdict is not Verdict.DEADLOCK_FREE
        assert "state bound" in result.reason

    def test_depth_bound_is_not_deadlock_free(self):
        result = _explore(wildcard_master_worker_programs(), max_depth=1)
        assert result.verdict is Verdict.BOUND_EXCEEDED
        assert "depth bound" in result.reason

    def test_generous_bounds_do_not_trip(self):
        result = _explore(
            wildcard_master_worker_programs(),
            max_states=1_000,
            max_depth=1_000,
        )
        assert result.verdict is Verdict.DEADLOCK_POSSIBLE


# ----------------------------------------------------------------------
# Memoization and determinism
# ----------------------------------------------------------------------

class TestDeterminism:
    def test_exploration_is_deterministic(self):
        a = _explore(wildcard_stress_programs(4, rounds=2))
        b = _explore(wildcard_stress_programs(4, rounds=2))
        assert a.verdict is b.verdict
        assert a.stats == b.stats

    def test_memoization_fires_on_diamond_interleavings(self):
        # Two independent wildcard channels produce commuting branches
        # that reconverge -> memo hits must be non-zero without POR.
        result = _explore(wildcard_stress_programs(4, rounds=2), por=False)
        assert result.verdict is Verdict.DEADLOCK_FREE
        assert result.stats.memo_hits > 0


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

class TestMetrics:
    def test_counters_land_under_verify_prefix(self):
        metrics = MetricsRegistry()
        result = _explore(wildcard_master_worker_programs(), metrics=metrics)
        counters = metrics.snapshot()["counters"]
        assert counters["verify.runs"] == 1
        assert counters["verify.deadlocks_found"] == 1
        assert counters["verify.states_explored"] == (
            result.stats.states_explored
        )
        assert counters["verify.states_pruned"] == result.stats.states_pruned
        assert "verify.bound_exceeded" not in counters

    def test_bound_exceeded_counter(self):
        metrics = MetricsRegistry()
        _explore(
            wildcard_master_worker_programs(), max_states=2, metrics=metrics
        )
        counters = metrics.snapshot()["counters"]
        assert counters["verify.bound_exceeded"] == 1
        assert "verify.deadlocks_found" not in counters


# ----------------------------------------------------------------------
# Refusals
# ----------------------------------------------------------------------

class TestUnsupported:
    def test_truncated_extraction_is_refused(self):
        def runaway(rank):
            while True:
                yield rank.allreduce()

        ext = extract_programs([runaway] * 2, max_ops_per_rank=8)
        with pytest.raises(ExplorationUnsupported):
            explore_extraction(ext)

    def test_data_dependent_control_flow_is_refused(self):
        # iprobe's fabricated answer makes the sequence inexact in a way
        # wildcard pinning cannot repair.
        def prog(rank):
            yield rank.iprobe(source=1 - rank.rank, tag=0)
            yield rank.finalize()

        ext = extract_programs([prog] * 2)
        assert not ext.exact and not ext.wildcard_exact
        with pytest.raises(ExplorationUnsupported):
            explore_extraction(ext)

    def test_explore_sequences_empty_input_is_trivially_free(self):
        result = explore_sequences([], {})
        assert result.verdict is Verdict.DEADLOCK_FREE
        assert result.stats.states_explored == 1
