"""The blocking predicate ``b`` (Section 3.1) and MPI freedoms (3.3)."""
import pytest

from repro.mpi.blocking import BlockingSemantics, is_blocking
from repro.mpi.constants import PROC_NULL, OpKind
from repro.mpi.ops import Operation


def _op(kind, **kw):
    defaults = dict(rank=0, ts=0)
    if kind.value.startswith("MPI_") and kind in (
        OpKind.SEND, OpKind.SSEND, OpKind.BSEND, OpKind.RSEND,
        OpKind.RECV, OpKind.PROBE, OpKind.IPROBE,
    ):
        defaults["peer"] = 1
    if kind in (OpKind.ISEND, OpKind.ISSEND, OpKind.IBSEND, OpKind.IRSEND,
                OpKind.IRECV):
        defaults["peer"] = 1
        defaults["request"] = 0
    if kind in (OpKind.WAIT, OpKind.WAITALL, OpKind.WAITANY, OpKind.WAITSOME,
                OpKind.TEST, OpKind.TESTALL, OpKind.TESTANY, OpKind.TESTSOME):
        defaults["requests"] = (0,)
    defaults.update(kw)
    return Operation(kind=kind, **defaults)


class TestStrictB:
    """Verbatim check of the paper's definition of b."""

    def test_blocking_operations(self, strict):
        for kind in (OpKind.SEND, OpKind.SSEND, OpKind.RECV, OpKind.PROBE,
                     OpKind.WAIT, OpKind.WAITANY, OpKind.WAITSOME,
                     OpKind.WAITALL, OpKind.BARRIER, OpKind.ALLREDUCE,
                     OpKind.REDUCE, OpKind.COMM_DUP):
            assert is_blocking(_op(kind), strict), kind

    def test_nonblocking_operations(self, strict):
        for kind in (OpKind.IPROBE, OpKind.ISEND, OpKind.ISSEND,
                     OpKind.IBSEND, OpKind.IRSEND, OpKind.BSEND,
                     OpKind.RSEND, OpKind.IRECV, OpKind.TEST,
                     OpKind.TESTANY, OpKind.TESTSOME, OpKind.TESTALL):
            assert not is_blocking(_op(kind), strict), kind

    def test_default_semantics_is_strict(self):
        assert is_blocking(_op(OpKind.SEND)) is True

    def test_finalize_is_terminal(self, strict):
        assert is_blocking(_op(OpKind.FINALIZE), strict)


class TestProcNull:
    def test_proc_null_never_blocks(self, strict):
        assert not is_blocking(_op(OpKind.SEND, peer=PROC_NULL), strict)
        assert not is_blocking(_op(OpKind.RECV, peer=PROC_NULL), strict)
        assert not is_blocking(_op(OpKind.PROBE, peer=PROC_NULL), strict)


class TestRelaxedFreedoms:
    def test_eager_send_buffers(self, relaxed):
        small = _op(OpKind.SEND, nbytes=16)
        assert not is_blocking(small, relaxed)

    def test_rendezvous_above_eager_threshold(self):
        sem = BlockingSemantics.relaxed(eager_threshold=100)
        big = _op(OpKind.SEND, nbytes=4096)
        assert is_blocking(big, sem)

    def test_ssend_always_blocks(self, relaxed):
        assert is_blocking(_op(OpKind.SSEND), relaxed)

    def test_collective_relaxation(self, relaxed, strict):
        assert strict.collective_synchronizes(OpKind.REDUCE)
        assert not relaxed.collective_synchronizes(OpKind.REDUCE)
        # Data-complete collectives must synchronize even when relaxed.
        assert relaxed.collective_synchronizes(OpKind.BARRIER)
        assert relaxed.collective_synchronizes(OpKind.ALLREDUCE)
        assert relaxed.collective_synchronizes(OpKind.ALLTOALL)

    def test_collective_synchronizes_rejects_p2p(self, strict):
        with pytest.raises(ValueError):
            strict.collective_synchronizes(OpKind.SEND)

    def test_send_buffers_only_standard_mode(self, relaxed):
        assert relaxed.send_buffers(_op(OpKind.SEND, nbytes=8))
        assert relaxed.send_buffers(_op(OpKind.ISEND, nbytes=8))
        assert not relaxed.send_buffers(_op(OpKind.SSEND, nbytes=8))
