"""Distributed-tracing plumbing: contexts, packed frames, clock merge.

The sharded backend's workers live in other processes, so everything
here crosses a pickle boundary: the trace context on wire tuples, the
worker observer spec, and the packed event frames. A field lost or
reordered in any of them silently corrupts the merged trace, so each
representation round-trips exactly.
"""
import pickle

import pytest

from repro.obs.dist import (
    COORDINATOR_SHARD,
    TraceContext,
    TraceMerger,
    WorkerObsSpec,
    events_to_wire,
    make_worker_observer,
    next_run_id,
    wire_len,
    wire_to_events,
)
from repro.obs.events import TraceEvent
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.tracer import DEFAULT_EVENT_LIMIT, Tracer


def test_run_ids_are_unique_and_nonzero():
    a, b = next_run_id(), next_run_id()
    assert a != b
    assert a > 0 and b > 0  # 0 is the "no distributed trace" sentinel


def test_trace_context_wire_roundtrip():
    ctx = TraceContext(run_id=9, shard_id=COORDINATOR_SHARD, round=17,
                       parent_span=3)
    assert TraceContext.from_wire(ctx.to_wire()) == ctx
    assert ctx.to_wire() == (9, COORDINATOR_SHARD, 17, 3)


def test_worker_obs_spec_from_observer():
    spec = WorkerObsSpec.from_observer(Observer(tracer=Tracer(limit=77)),
                                       run_id=5)
    assert spec == WorkerObsSpec(enabled=True, event_limit=77, run_id=5)
    dark = WorkerObsSpec.from_observer(NULL_OBSERVER, run_id=5)
    assert not dark.enabled and dark.run_id == 0
    # specs ship inside _ShardSpec: must stay picklable
    assert pickle.loads(pickle.dumps(spec)) == spec


def test_make_worker_observer_null_default_is_shared():
    assert make_worker_observer(WorkerObsSpec()) is NULL_OBSERVER
    obs = make_worker_observer(
        WorkerObsSpec(enabled=True, event_limit=99, run_id=1)
    )
    assert obs.enabled and obs.tracer.limit == 99


EVENTS = [
    TraceEvent(name="round 1", cat="shard.round", ph="X", ts=10.0,
               pid=3, tid=0, dur=25.5, args={"round": 1}),
    TraceEvent(name="dwell", cat="waitstate.dwell", ph="C", ts=11.0,
               pid=3, tid=4, dur=None, args={"depth": 1.5}),
    TraceEvent(name="odd", cat="misc", ph="i", ts=12.0, pid=3, tid=5,
               dur=None, args={"a": 1, "b": "two"}),
    TraceEvent(name="bare", cat="misc", ph="i", ts=13.0, pid=3, tid=6,
               dur=0.0, args=None),
    TraceEvent(name="txt", cat="misc", ph="i", ts=14.0, pid=3, tid=7,
               dur=None, args={"label": "x"}),
]


def test_packed_events_roundtrip_exactly():
    wire = events_to_wire(EVENTS)
    assert wire_len(wire) == len(EVENTS)
    assert wire_to_events(wire) == EVENTS
    # frames cross a process boundary
    assert wire_to_events(pickle.loads(pickle.dumps(wire))) == EVENTS


def test_packed_events_rebase_timestamps_only():
    shifted = wire_to_events(events_to_wire(EVENTS), offset=100.0)
    assert [e.ts for e in shifted] == [e.ts + 100.0 for e in EVENTS]
    assert [e.dur for e in shifted] == [e.dur for e in EVENTS]


def test_packed_events_distinguish_int_and_float_args():
    evs = wire_to_events(events_to_wire(EVENTS))
    assert type(evs[0].args["round"]) is int
    assert type(evs[1].args["depth"]) is float


def test_merger_offset_is_median_of_round_deltas():
    merger = TraceMerger()
    # coordinator stamps rounds 1..5 at t=100,200,...; the worker's
    # clock runs 40us behind except one jittered outlier.
    for rnd in range(1, 6):
        merger.note_round_sent(0, rnd, rnd * 100.0)
    anchors = [(rnd, rnd * 100.0 - 40.0) for rnd in range(1, 5)]
    anchors.append((5, 500.0 - 900.0))  # scheduling-jitter outlier
    merger.add_frame(0, {"events": events_to_wire(EVENTS),
                         "rounds": anchors, "dropped": 0})
    assert merger.offset_us(0) == pytest.approx(40.0)
    # unknown shard: no anchors, events keep raw stamps
    assert merger.offset_us(9) == 0.0


def test_merger_rebases_events_into_observer():
    merger = TraceMerger()
    merger.note_round_sent(2, 1, 1000.0)
    merger.add_frame(2, {"events": events_to_wire(EVENTS),
                         "rounds": [(1, 400.0)], "dropped": 3})
    assert merger.event_counts() == {2: len(EVENTS)}
    observer = Observer()
    offsets = merger.merge_into(observer)
    assert offsets == {2: pytest.approx(600.0)}
    merged = observer.tracer.drain()
    assert [e.ts for e in merged[: len(EVENTS)]] == [
        pytest.approx(e.ts + 600.0) for e in EVENTS
    ]
    # per-shard drop attribution lands on the metrics registry
    state = observer.metrics.dump_state()
    assert ("obs.tracer.dropped.shard2", 3) in state["counters"].items()


def test_tracer_drain_keeps_limit_accounting():
    tracer = Tracer(limit=4)
    assert Tracer().limit == DEFAULT_EVENT_LIMIT
    for i in range(4):
        tracer.instant("e%d" % i, cat="t", ts=float(i), pid=1, tid=0)
    first = tracer.drain()
    assert len(first) == 4 and tracer.dropped == 0
    # the limit covers the whole stream, not each drain window: the
    # next event is dropped (with the one-time truncation marker)
    tracer.instant("late", cat="t", ts=9.0, pid=1, tid=0)
    leftover = tracer.drain()
    assert [e.name for e in leftover] == ["truncated"]
    assert tracer.dropped == 1
