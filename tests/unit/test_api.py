"""The ``repro.api`` facade: AnalysisConfig, Session, and the v1
removal of the legacy free-function names."""
import json

import pytest

import repro
from repro.api import AnalysisConfig, Session
from repro.backend import InlineBackend, ShardedBackend
from repro.workloads import fig2a_programs, stress_programs


class TestAnalysisConfig:
    def test_defaults_build_the_inline_backend(self):
        config = AnalysisConfig()
        assert isinstance(config.build_backend(), InlineBackend)
        assert not config.observability_wanted

    def test_backend_selection(self):
        config = AnalysisConfig(backend="sharded", shards=4)
        backend = config.build_backend()
        assert isinstance(backend, ShardedBackend)
        assert backend.shards == 4

    def test_replace_returns_a_new_value(self):
        config = AnalysisConfig()
        other = config.replace(fan_in=8)
        assert other.fan_in == 8 and config.fan_in == 4

    def test_sinks_imply_observability(self):
        assert AnalysisConfig(trace_out="x.json").observability_wanted
        assert AnalysisConfig(jsonl_out="x.jsonl").observability_wanted

    def test_frozen(self):
        with pytest.raises(Exception):
            AnalysisConfig().fan_in = 8


class TestSession:
    def test_record_analyze_pipeline(self):
        session = Session()
        run = session.record(fig2a_programs())
        assert session.last_run is run
        outcome = session.analyze()
        assert outcome.deadlocked == (0, 1)
        assert session.last_outcome is outcome

    def test_run_is_record_plus_analyze(self):
        outcome = Session().run(fig2a_programs())
        assert outcome.has_deadlock

    def test_analyze_without_record_raises(self):
        with pytest.raises(ValueError, match="record a run first"):
            Session().analyze()

    def test_analyze_accepts_a_matched_trace(self):
        session = Session()
        run = session.record(stress_programs(4, iterations=3))
        outcome = session.analyze(run.matched)
        assert not outcome.has_deadlock

    def test_overrides_win_over_config(self):
        session = Session(AnalysisConfig(fan_in=8), backend="sharded")
        assert session.config.fan_in == 8
        assert isinstance(session.backend, ShardedBackend)

    def test_sharded_session_reaches_the_same_verdict(self):
        outcome = Session(backend="sharded", shards=2).run(fig2a_programs())
        assert outcome.deadlocked == (0, 1)

    def test_context_manager_exports_sinks(self, tmp_path):
        trace = tmp_path / "session.trace.json"
        jsonl = tmp_path / "session.jsonl"
        with Session(
            trace_out=str(trace), jsonl_out=str(jsonl)
        ) as session:
            session.run(fig2a_programs())
        doc = json.loads(trace.read_text())
        assert doc["repro"]["deadlocked"] is True
        assert doc["traceEvents"]
        assert jsonl.read_text().strip()

    def test_export_is_idempotent(self, tmp_path):
        trace = tmp_path / "once.trace.json"
        session = Session(trace_out=str(trace))
        session.run(fig2a_programs())
        session.export()
        stamp = trace.stat().st_mtime_ns
        trace.unlink()
        session.export()  # second call must not rewrite
        assert not trace.exists()
        assert stamp


class TestRemovedLegacyNames:
    """The 1.1 deprecation shims are gone: importing the legacy free
    functions from ``repro`` raises AttributeError naming the Session
    replacement (pinned by the v1 API consolidation)."""

    @pytest.mark.parametrize(
        "name",
        ["run_programs", "analyze_trace", "detect_deadlocks_distributed"],
    )
    def test_legacy_name_raises_attribute_error(self, name):
        with pytest.raises(AttributeError, match="Session"):
            getattr(repro, name)
        with pytest.raises(AttributeError, match="removed in 1.2"):
            getattr(repro, name)

    @pytest.mark.parametrize(
        "name",
        ["run_programs", "analyze_trace", "detect_deadlocks_distributed"],
    )
    def test_legacy_import_raises(self, name):
        with pytest.raises(ImportError):
            exec(f"from repro import {name}")

    def test_legacy_names_left_all(self):
        assert "run_programs" not in repro.__all__
        assert "analyze_trace" not in repro.__all__
        assert "detect_deadlocks_distributed" not in repro.__all__

    def test_other_unknown_attributes_still_raise_plainly(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.definitely_not_a_name

    def test_home_modules_keep_the_originals(self):
        from repro.core import analyze_trace, detect_deadlocks_distributed
        from repro.runtime import run_programs

        result = run_programs(fig2a_programs())
        assert result.deadlocked
        assert analyze_trace(result.matched).deadlocked == (0, 1)
        assert detect_deadlocks_distributed(
            result.matched
        ).deadlocked == (0, 1)
