"""Per-operation state and the sliding trace window (Section 4.2)."""
import pytest

from repro.core.opstate import OpState, RankWindow
from repro.mpi.constants import OpKind
from repro.mpi.ops import Operation
from repro.util.errors import ProtocolError, ResourceLimitError


def _send(ts, rank=0, peer=1):
    return Operation(kind=OpKind.SEND, rank=rank, ts=ts, peer=peer)


def _recv(ts, rank=0, peer=1):
    return Operation(kind=OpKind.RECV, rank=rank, ts=ts, peer=peer)


def _barrier(ts, rank=0):
    return Operation(kind=OpKind.BARRIER, rank=rank, ts=ts)


class TestWindowBasics:
    def test_in_order_delivery_enforced(self):
        w = RankWindow(0)
        w.add(_send(0))
        with pytest.raises(ProtocolError):
            w.add(_send(2))  # skipped ts=1

    def test_wrong_rank_rejected(self):
        w = RankWindow(0)
        with pytest.raises(ProtocolError):
            w.add(_send(0, rank=3))

    def test_window_limit_reproduces_gapgeofem(self):
        w = RankWindow(0, max_ops=3)
        for ts in range(3):
            w.add(_barrier(ts))
        with pytest.raises(ResourceLimitError):
            w.add(_barrier(3))

    def test_current_and_finished(self):
        w = RankWindow(0)
        w.add(Operation(kind=OpKind.FINALIZE, rank=0, ts=0))
        assert w.current_op().op.is_finalize()
        assert w.finished()

    def test_awaiting_events(self):
        w = RankWindow(0)
        assert w.awaiting_events()  # nothing received yet
        w.done = True
        assert not w.awaiting_events()
        assert w.finished()  # done with empty trace


class TestEvictionRules:
    def test_barrier_evicted_after_advance(self):
        w = RankWindow(0)
        st = w.add(_barrier(0))
        w.add(_barrier(1))
        st.collective_acked = True
        w.advance()
        assert w.get(0) is None  # evicted
        assert w.current == 1

    def test_send_retained_until_handshake(self):
        w = RankWindow(0)
        st = w.add(_send(0))
        w.add(_barrier(1))
        st.got_recv_active = True  # handshake done before advancing
        w.advance()
        assert w.get(0) is None

    def test_send_without_handshake_retained(self):
        w = RankWindow(0)
        st = w.add(
            Operation(kind=OpKind.ISEND, rank=0, ts=0, peer=1, request=0)
        )
        w.add(_barrier(1))
        w.advance()  # isend is non-blocking: advances without handshake
        assert w.get(0) is not None  # retained: recvActive may arrive
        st.got_recv_active = True
        w.evict_completed_send(0)
        assert w.get(0) is not None  # still referenced by request 0

    def test_recv_retained_until_ack(self):
        w = RankWindow(0)
        st = w.add(
            Operation(kind=OpKind.IRECV, rank=0, ts=0, peer=1, request=0)
        )
        w.add(_barrier(1))
        w.advance()
        assert w.get(0) is not None
        st.got_ack = True

    def test_request_creator_released_by_completion(self):
        w = RankWindow(0)
        isend = w.add(
            Operation(kind=OpKind.ISEND, rank=0, ts=0, peer=1, request=0)
        )
        isend.got_recv_active = True
        wait = w.add(Operation(kind=OpKind.WAIT, rank=0, ts=1, requests=(0,)))
        isend.completion_satisfied = True
        w.advance()  # past the isend (non-blocking)
        assert w.get(0) is not None  # request 0 still live
        assert w.completion_ready(wait)
        w.advance()  # past the wait: consumes request 0
        assert w.get(0) is None

    def test_iprobe_never_retained(self):
        w = RankWindow(0)
        w.add(Operation(kind=OpKind.IPROBE, rank=0, ts=0, peer=1))
        w.add(_barrier(1))
        w.advance()
        assert w.get(0) is None

    def test_peak_size_tracks_occupancy(self):
        w = RankWindow(0)
        for ts in range(5):
            st = w.add(_barrier(ts))
            st.collective_acked = True
        assert w.peak_size == 5
        for _ in range(5):
            w.advance()
        assert len(w) == 0
        assert w.peak_size == 5


class TestCompletionEvaluation:
    def _window_with_requests(self, kind, n=2):
        w = RankWindow(0)
        for ts in range(n):
            w.add(Operation(kind=OpKind.IRECV, rank=0, ts=ts, peer=1,
                            request=ts))
        comp = w.add(Operation(kind=kind, rank=0, ts=n,
                               requests=tuple(range(n))))
        return w, comp

    def test_waitall_needs_all(self):
        w, comp = self._window_with_requests(OpKind.WAITALL)
        assert not w.completion_ready(comp)
        w.request_state(0).completion_satisfied = True
        assert not w.completion_ready(comp)
        w.request_state(1).completion_satisfied = True
        assert w.completion_ready(comp)

    def test_waitany_needs_one(self):
        w, comp = self._window_with_requests(OpKind.WAITANY)
        assert not w.completion_ready(comp)
        w.request_state(1).completion_satisfied = True
        assert w.completion_ready(comp)

    def test_locally_completing_requests(self):
        w = RankWindow(0)
        w.add(Operation(kind=OpKind.IBSEND, rank=0, ts=0, peer=1, request=0))
        comp = w.add(Operation(kind=OpKind.WAIT, rank=0, ts=1, requests=(0,)))
        assert w.completion_ready(comp)

    def test_unknown_request(self):
        w = RankWindow(0)
        comp = w.add(Operation(kind=OpKind.WAIT, rank=0, ts=0, requests=(9,)))
        with pytest.raises(ProtocolError):
            w.completion_ready(comp)


class TestAdvanceErrors:
    def test_advance_past_unreceived(self):
        w = RankWindow(0)
        with pytest.raises(ProtocolError):
            w.advance()

    def test_require_missing_op(self):
        w = RankWindow(0)
        with pytest.raises(ProtocolError):
            w.require(3)
