"""The adaptive analysis loop (Section 3.3's remedy, implemented)."""
import pytest

from repro.core.adaptation import Verdict, analyze_with_adaptation
from repro.workloads import (
    fig2a_programs,
    fig2b_programs,
    fig4_programs,
    stress_programs,
)
from tests.conftest import run_relaxed, run_strict


def test_clean_trace_no_adaptation():
    res = run_relaxed(stress_programs(4, iterations=6), seed=1)
    result = analyze_with_adaptation(res.matched)
    assert result.verdict is Verdict.NO_DEADLOCK
    assert not result.adapted
    assert len(result.rounds) == 1
    assert not result.has_deadlock


def test_manifest_deadlock_is_deadlock():
    res = run_relaxed(fig2a_programs())
    result = analyze_with_adaptation(res.matched)
    assert result.verdict is Verdict.DEADLOCK
    assert result.final.deadlocked == (0, 1)
    assert result.has_deadlock


def test_masked_send_send_is_unsafe():
    """Figure 2(b): the run completed, the strict b finds the deadlock,
    no unexpected matches — classified as unsafe, not as a manifest
    deadlock."""
    res = run_relaxed(fig2b_programs(), seed=3)
    assert not res.deadlocked
    result = analyze_with_adaptation(res.matched)
    assert result.verdict is Verdict.UNSAFE
    assert result.final.deadlocked == (0, 1, 2)
    assert not result.adapted


def _fig4_unexpected_trace():
    for seed in range(60):
        res = run_relaxed(fig4_programs(), seed=seed)
        if not res.deadlocked and res.matched.send_of.get((1, 0)) == (2, 1):
            return res
    pytest.fail("no Figure 4 interleaving found")


def test_fig4_adapts_to_clean():
    res = _fig4_unexpected_trace()
    result = analyze_with_adaptation(res.matched)
    assert result.verdict is Verdict.ADAPTED_CLEAN
    assert result.adapted
    assert result.rounds[0].unexpected  # strict pass flagged it
    assert not result.rounds[-1].unexpected
    assert not result.final.has_deadlock
    assert "adaptation" in result.summary() or "adapted" in result.summary()


def test_summary_mentions_every_round():
    res = _fig4_unexpected_trace()
    result = analyze_with_adaptation(res.matched)
    text = result.summary()
    for r in result.rounds:
        assert r.description in text


def test_deadlock_survives_adaptation():
    """Unexpected matches trigger adaptation, but a genuine deadlock
    later in the trace survives the adapted semantics: DEADLOCK."""
    from repro.mpi import ANY_SOURCE

    def p0(r):
        yield r.send(dest=1)
        yield r.reduce(root=1)
        yield r.finalize()

    def p1(r):
        yield r.recv(source=ANY_SOURCE)
        yield r.reduce(root=1)
        yield r.recv(source=ANY_SOURCE)
        yield r.recv(source=2, tag=9)  # never sent: real deadlock
        yield r.finalize()

    def p2(r):
        yield r.reduce(root=1)
        yield r.send(dest=1)
        yield r.finalize()

    found = False
    for seed in range(80):
        res = run_relaxed([p0, p1, p2], seed=seed)
        assert res.deadlocked  # the tag-9 recv always hangs
        if res.matched.send_of.get((1, 0)) != (2, 1):
            continue  # need the Figure 4 interleaving
        found = True
        result = analyze_with_adaptation(res.matched)
        assert result.verdict is Verdict.DEADLOCK
        assert result.adapted  # the strict round had unexpected matches
        assert result.rounds[0].unexpected
        # The adapted round pins the real culprit: rank 1's tag-9 recv.
        assert 1 in result.final.deadlocked
        cond = result.final.conditions[1]
        assert "tag=9" in cond.op_description
        break
    assert found, "no seed produced the unexpected-match interleaving"
