"""The source-level rank-program linter."""
import textwrap

import pytest

from repro.analysis import lint_source
from repro.checks.findings import Severity


def _lint(source):
    return lint_source(textwrap.dedent(source), "prog.py")


def _by_check(findings):
    out = {}
    for f in findings:
        out.setdefault(f.check, []).append(f)
    return out


class TestProgramDiscovery:
    def test_recognizes_module_level_generator(self):
        findings, programs = _lint(
            """
            def ring(rank):
                yield rank.send(dest=1, tag=0)
                yield rank.finalize()
            """
        )
        assert [p.name for p in programs] == ["ring"]
        assert programs[0].handle == "rank"
        assert not findings

    def test_ignores_plain_functions_and_extra_required_params(self):
        _, programs = _lint(
            """
            def helper(x):
                return x + 1

            def needs_two(rank, other):
                yield rank.barrier()
                yield rank.finalize()

            def defaulted(rank, n=3):
                yield rank.allreduce()
                yield rank.finalize()
            """
        )
        assert [p.name for p in programs] == ["defaulted"]

    def test_handle_name_is_flexible(self):
        _, programs = _lint(
            """
            def prog(comm):
                yield comm.barrier()
                yield comm.finalize()
            """
        )
        assert programs and programs[0].handle == "comm"


class TestYieldDiscipline:
    def test_unyielded_send_is_an_error(self):
        findings, _ = _lint(
            """
            def prog(rank):
                rank.send(1, tag=0)
                yield rank.finalize()
            """
        )
        bad = _by_check(findings)["unyielded-call"]
        assert bad[0].severity is Severity.ERROR
        assert bad[0].location == "prog.py:3"
        assert "rank.send(...)" in bad[0].message

    def test_yield_from_on_single_call_is_an_error(self):
        findings, _ = _lint(
            """
            def prog(rank):
                yield from rank.recv(source=0)
                yield rank.finalize()
            """
        )
        assert "yield-from-misuse" in _by_check(findings)

    def test_plain_yield_on_sendrecv_is_an_error(self):
        findings, _ = _lint(
            """
            def prog(rank):
                yield rank.sendrecv(dest=1, source=1)
                yield rank.finalize()
            """
        )
        bad = _by_check(findings)["yield-from-misuse"]
        assert "yield from" in bad[0].message

    def test_undriven_startall_is_an_error(self):
        findings, _ = _lint(
            """
            def prog(rank):
                sreq = yield rank.send_init(1, tag=0)
                rank.startall([sreq])
                yield rank.wait(sreq)
                yield rank.finalize()
            """
        )
        assert "unyielded-call" in _by_check(findings)

    def test_correct_yield_from_is_clean(self):
        findings, _ = _lint(
            """
            def prog(rank):
                yield from rank.sendrecv(dest=1, source=1)
                yield rank.finalize()
            """
        )
        assert not findings

    def test_handle_alias_is_tracked(self):
        findings, _ = _lint(
            """
            def prog(rank):
                comm = rank
                comm.barrier()
                yield rank.finalize()
            """
        )
        assert "unyielded-call" in _by_check(findings)

    def test_nested_function_not_linted_with_outer_handle(self):
        # The nested closure is its own (non-)program; its bare
        # statement must not be attributed to the enclosing program.
        findings, _ = _lint(
            """
            def prog(rank):
                def helper():
                    return rank.rank
                yield rank.barrier()
                yield rank.finalize()
            """
        )
        assert not findings


class TestRankDependentCollectives:
    def test_collective_in_one_branch_warns(self):
        findings, _ = _lint(
            """
            def prog(rank):
                if rank.rank == 0:
                    yield rank.barrier()
                else:
                    yield rank.recv(source=0, tag=0)
                yield rank.finalize()
            """
        )
        warn = _by_check(findings)["rank-dependent-collective"]
        assert warn[0].severity is Severity.WARNING
        assert "if-branch: barrier" in warn[0].message

    def test_rank_alias_in_condition_is_recognized(self):
        findings, _ = _lint(
            """
            def prog(rank):
                me = rank.rank
                if me % 2 == 0:
                    yield rank.allreduce()
                yield rank.finalize()
            """
        )
        assert "rank-dependent-collective" in _by_check(findings)

    def test_same_collectives_both_branches_is_clean(self):
        findings, _ = _lint(
            """
            def prog(rank):
                if rank.rank == 0:
                    yield rank.bcast(root=0)
                else:
                    yield rank.bcast(root=0)
                yield rank.finalize()
            """
        )
        assert not findings

    def test_non_rank_condition_is_clean(self):
        findings, _ = _lint(
            """
            def prog(rank, n=4):
                if n > 2:
                    yield rank.barrier()
                yield rank.finalize()
            """
        )
        assert not findings


class TestArgumentChecks:
    def test_negative_literal_send_tag_is_an_error(self):
        findings, _ = _lint(
            """
            def prog(rank):
                yield rank.send(1, tag=-3)
                yield rank.finalize()
            """
        )
        bad = _by_check(findings)["literal-tag-range"]
        assert bad[0].severity is Severity.ERROR

    def test_any_tag_on_recv_is_legal(self):
        findings, _ = _lint(
            """
            def prog(rank):
                yield rank.recv(source=0, tag=-1)
                yield rank.finalize()
            """
        )
        assert not findings

    def test_any_tag_on_send_is_an_error(self):
        findings, _ = _lint(
            """
            def prog(rank):
                yield rank.send(1, tag=-1)
                yield rank.finalize()
            """
        )
        assert "literal-tag-range" in _by_check(findings)

    def test_tag_above_portable_ub_warns(self):
        findings, _ = _lint(
            """
            def prog(rank):
                yield rank.send(1, tag=1 << 20)
                yield rank.finalize()
            """
        )
        # 1 << 20 is a BinOp, not a literal: silent. A plain literal warns.
        findings, _ = _lint(
            """
            def prog(rank):
                yield rank.send(1, tag=1048576)
                yield rank.finalize()
            """
        )
        bad = _by_check(findings)["literal-tag-range"]
        assert bad[0].severity is Severity.WARNING

    def test_any_source_as_send_destination(self):
        findings, _ = _lint(
            """
            def prog(rank):
                yield rank.send(-1, tag=0)
                yield rank.finalize()
            """
        )
        assert "any-source-send" in _by_check(findings)

    def test_any_source_name_as_sendrecv_destination(self):
        findings, _ = _lint(
            """
            from repro.mpi.constants import ANY_SOURCE

            def prog(rank):
                yield from rank.sendrecv(dest=ANY_SOURCE, source=0)
                yield rank.finalize()
            """
        )
        assert "any-source-send" in _by_check(findings)

    def test_findings_carry_file_line_locations(self):
        findings, _ = _lint(
            """
            def prog(rank):
                yield rank.send(1, tag=-7)
                yield rank.finalize()
            """
        )
        assert findings[0].location == "prog.py:3"
        assert "prog.py:3" in findings[0].render()


def test_syntax_error_propagates():
    with pytest.raises(SyntaxError):
        lint_source("def broken(:\n", "broken.py")
