"""O(n) linear matching for the wildcard-free fragment."""
import pytest

from repro.analysis import (
    Verdict,
    explore_sequences,
    extract_programs,
    match_linear,
    replay_witness,
)
from repro.analysis.symbolic import LinearMatchUnsupported
from repro.mpi.constants import ANY_SOURCE, ANY_TAG


def _extract(programs):
    ext = extract_programs(list(programs))
    assert not ext.truncated
    return ext


def _linear(programs):
    ext = _extract(programs)
    return match_linear(ext.sequences, ext.comms), ext


# ----------------------------------------------------------------------
# Verdicts
# ----------------------------------------------------------------------

def test_ping_pong_is_deadlock_free():
    def even(rank):
        yield rank.send(rank.rank + 1, tag=0)
        yield rank.recv(source=rank.rank + 1, tag=1)
        yield rank.finalize()

    def odd(rank):
        yield rank.recv(source=rank.rank - 1, tag=0)
        yield rank.send(rank.rank - 1, tag=1)
        yield rank.finalize()

    result, ext = _linear([even, odd, even, odd])
    assert not result.has_deadlock
    assert result.deadlocked == ()
    assert result.witness is None
    # Every op ran exactly once: linear in the trace length.
    total = sum(len(seq) for seq in ext.sequences)
    assert result.ops_processed == total


def test_head_to_head_receives_deadlock():
    def prog(rank):
        peer = 1 - rank.rank
        yield rank.recv(source=peer, tag=0)
        yield rank.send(peer, tag=0)
        yield rank.finalize()

    result, _ = _linear([prog, prog])
    assert result.has_deadlock
    assert sorted(result.deadlocked) == [0, 1]
    assert result.witness_cycle and set(result.witness_cycle) <= {0, 1}
    assert result.detection is not None
    assert result.detection.has_deadlock


def test_send_ring_under_rendezvous_deadlocks_all_ranks():
    def ring(rank):
        right = (rank.rank + 1) % rank.size
        left = (rank.rank - 1) % rank.size
        yield rank.send(right, tag=0)
        yield rank.recv(source=left, tag=0)
        yield rank.finalize()

    result, _ = _linear([ring] * 4)
    assert result.has_deadlock
    assert sorted(result.deadlocked) == [0, 1, 2, 3]


def test_missing_collective_participant_deadlocks():
    def with_barrier(rank):
        yield rank.barrier()
        yield rank.finalize()

    def without_barrier(rank):
        yield rank.finalize()

    result, _ = _linear([with_barrier, with_barrier, without_barrier])
    assert result.has_deadlock
    # The two barrier callers starve; rank 2 parks in FINALIZE but is
    # reported blocked too (the world wave can never complete).
    assert 0 in result.deadlocked and 1 in result.deadlocked


# ----------------------------------------------------------------------
# Fragment features: nonblocking, buffered, ANY_TAG, probe
# ----------------------------------------------------------------------

def test_nonblocking_exchange_completes():
    def prog(rank):
        peer = 1 - rank.rank
        s = yield rank.isend(peer, tag=3)
        r = yield rank.irecv(source=peer, tag=3)
        yield rank.waitall([s, r])
        yield rank.barrier()
        yield rank.finalize()

    result, _ = _linear([prog, prog])
    assert not result.has_deadlock


def test_buffered_send_breaks_the_ring():
    def ring(rank):
        right = (rank.rank + 1) % rank.size
        left = (rank.rank - 1) % rank.size
        yield rank.bsend(right, tag=0)
        yield rank.recv(source=left, tag=0)
        yield rank.finalize()

    result, _ = _linear([ring] * 4)
    assert not result.has_deadlock


def test_any_tag_directed_receive_matches_in_arrival_order():
    def sender(rank):
        yield rank.send(1, tag=5)
        yield rank.send(1, tag=9)
        yield rank.finalize()

    def receiver(rank):
        yield rank.recv(source=0, tag=ANY_TAG)
        yield rank.recv(source=0, tag=9)
        yield rank.finalize()

    # Non-overtaking: the ANY_TAG receive must take tag=5 (posted
    # first), leaving tag=9 for the directed receive.
    result, _ = _linear([sender, receiver])
    assert not result.has_deadlock


def test_probe_blocks_until_message_then_leaves_it_queued():
    def sender(rank):
        yield rank.send(1, tag=2)
        yield rank.finalize()

    def prober(rank):
        yield rank.probe(source=0, tag=2)
        yield rank.recv(source=0, tag=2)
        yield rank.finalize()

    result, _ = _linear([sender, prober])
    assert not result.has_deadlock


def test_probe_for_message_never_sent_deadlocks():
    def silent(rank):
        yield rank.finalize()

    def prober(rank):
        yield rank.probe(source=0, tag=2)
        yield rank.finalize()

    result, _ = _linear([silent, prober])
    assert result.has_deadlock
    assert 1 in result.deadlocked


# ----------------------------------------------------------------------
# Unsupported inputs refuse loudly
# ----------------------------------------------------------------------

def test_wildcard_source_is_refused():
    def master(rank):
        yield rank.recv(source=ANY_SOURCE, tag=0)
        yield rank.finalize()

    def worker(rank):
        yield rank.send(0, tag=0)
        yield rank.finalize()

    ext = _extract([master, worker])
    with pytest.raises(LinearMatchUnsupported):
        match_linear(ext.sequences, ext.comms)


def test_runtime_steered_completion_is_refused():
    def prog(rank):
        peer = 1 - rank.rank
        r = yield rank.isend(peer, tag=0)
        yield rank.waitany([r])
        yield rank.recv(source=peer, tag=0)
        yield rank.finalize()

    ext = extract_programs([prog, prog])
    with pytest.raises(LinearMatchUnsupported):
        match_linear(ext.sequences, ext.comms)


# ----------------------------------------------------------------------
# Parity with the state-graph explorer
# ----------------------------------------------------------------------

def _explorer_parity(programs):
    ext = _extract(programs)
    lin = match_linear(ext.sequences, ext.comms)
    exp = explore_sequences(ext.sequences, ext.comms)
    assert lin.has_deadlock == (exp.verdict is Verdict.DEADLOCK_POSSIBLE)
    assert sorted(lin.deadlocked) == sorted(exp.deadlocked)
    return lin, exp


def test_deadlock_conditions_match_the_explorer_verbatim():
    def prog(rank):
        peer = 1 - rank.rank
        yield rank.recv(source=peer, tag=0)
        yield rank.send(peer, tag=0)
        yield rank.finalize()

    lin, exp = _explorer_parity([prog, prog])
    lin_reasons = {
        (c.rank, c.op_description, tuple(sorted(c.clauses)))
        for c in lin.conditions.values()
    }
    exp_reasons = {
        (c.rank, c.op_description, tuple(sorted(c.clauses)))
        for c in exp.conditions.values()
    }
    assert lin_reasons == exp_reasons


def test_collective_kind_mismatch_is_refused_like_the_explorer():
    # Mismatched collective waves are structural errors `_Model`
    # rejects up front — the linear matcher mirrors the explorer's
    # refusal rather than inventing a verdict.
    from repro.analysis import ExplorationUnsupported

    def a(rank):
        yield rank.barrier()
        yield rank.finalize()

    def b(rank):
        yield rank.allreduce()
        yield rank.finalize()

    ext = _extract([a, b])
    with pytest.raises(LinearMatchUnsupported):
        match_linear(ext.sequences, ext.comms)
    with pytest.raises(ExplorationUnsupported):
        explore_sequences(ext.sequences, ext.comms)


def test_deadlock_witness_replays_into_a_real_runtime_deadlock():
    def prog(rank):
        peer = 1 - rank.rank
        yield rank.recv(source=peer, tag=0)
        yield rank.send(peer, tag=0)
        yield rank.finalize()

    lin, _ = _linear([prog, prog])
    assert lin.witness is not None
    outcome = replay_witness([prog, prog], lin.witness)
    assert outcome.confirmed, outcome.reason
    assert sorted(outcome.runtime_deadlocked) == [0, 1]
