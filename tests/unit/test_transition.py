"""The wait state transition system (Section 3): rules, execution,
terminal states, blocked sets — including the paper's worked example."""
import pytest

from repro.core.transition import (
    RULE_ALL,
    RULE_ANY,
    RULE_COLL,
    RULE_NB,
    RULE_P2P,
    TransitionSystem,
)
from repro.mpi.blocking import BlockingSemantics
from repro.mpi.communicator import CommRegistry
from repro.mpi.constants import ANY_SOURCE, OpKind
from repro.mpi.ops import Operation
from repro.mpi.trace import CollectiveMatch, MatchedTrace, Trace
from repro.workloads import fig2b_programs
from tests.conftest import run_relaxed


def build_fig3_trace():
    """The matched trace of Figure 3 (the paper's worked example).

    Process 0: Send(to 1); Barrier; Send(to 1); [Recv(from 2)]
    Process 1: Recv(ANY); Recv(ANY); Barrier; Send(to 2); [Recv(from 0)]
    Process 2: Send(to 1); Barrier; Send(to 0); [Recv(from 1)]

    The deadlock manifests at the post-barrier sends; the trace ends
    there (the trailing receives are never issued), with the first
    wildcard receive matched to process 2's send as in Figure 3.
    """
    s0 = [
        Operation(kind=OpKind.SEND, rank=0, ts=0, peer=1),
        Operation(kind=OpKind.BARRIER, rank=0, ts=1),
        Operation(kind=OpKind.SEND, rank=0, ts=2, peer=1),
    ]
    s1 = [
        Operation(kind=OpKind.RECV, rank=1, ts=0, peer=ANY_SOURCE,
                  observed_peer=2),
        Operation(kind=OpKind.RECV, rank=1, ts=1, peer=ANY_SOURCE,
                  observed_peer=0),
        Operation(kind=OpKind.BARRIER, rank=1, ts=2),
        Operation(kind=OpKind.SEND, rank=1, ts=3, peer=2),
    ]
    s2 = [
        Operation(kind=OpKind.SEND, rank=2, ts=0, peer=1),
        Operation(kind=OpKind.BARRIER, rank=2, ts=1),
        Operation(kind=OpKind.SEND, rank=2, ts=2, peer=0),
    ]
    matched = MatchedTrace(Trace([s0, s1, s2]), CommRegistry(3))
    matched.add_p2p_match((2, 0), (1, 0))
    matched.add_p2p_match((0, 0), (1, 1))
    matched.add_collective_match(
        CollectiveMatch(comm_id=0,
                        members=frozenset({(0, 1), (1, 2), (2, 1)}))
    )
    return matched


class TestFig3Example:
    def test_paper_execution_sequence(self):
        """Replay the exact transition sequence printed in Section 3.1:
        (0,0,0) ->p2p (0,0,1) ->p2p (0,1,1) ->p2p (0,2,1) ->p2p (1,2,1)
        ->coll (1,2,2) ->coll (2,2,2) ->coll (2,3,2)."""
        ts = TransitionSystem(build_fig3_trace())
        state = ts.initial_state()
        expected = [
            (2, RULE_P2P, (0, 0, 1)),
            (1, RULE_P2P, (0, 1, 1)),
            (1, RULE_P2P, (0, 2, 1)),
            (0, RULE_P2P, (1, 2, 1)),
            (2, RULE_COLL, (1, 2, 2)),
            (0, RULE_COLL, (2, 2, 2)),
            (1, RULE_COLL, (2, 3, 2)),
        ]
        for proc, rule, after in expected:
            assert ts.rule_label(state, proc) == rule
            state = ts.step(state, proc)
            assert state == after
        assert ts.is_terminal(state)

    def test_paper_counterexamples_at_001(self):
        """The three non-applicable rules the paper walks through at
        state (0, 0, 1)."""
        ts = TransitionSystem(build_fig3_trace())
        state = (0, 0, 1)
        # Rule 2 not applicable to o_{2,0}: not process 2's current op.
        # Rule 2 not applicable to o_{0,0}: o_{1,1} is not active.
        assert ts.rule_label(state, 0) is None
        # Rule 3 not applicable to o_{2,1}: o_{0,1}, o_{1,2} not active.
        assert ts.rule_label(state, 2) is None
        # Only process 1 can move (its recv's matched send is active).
        assert ts.enabled_processes(state) == [1]

    def test_unique_terminal_state(self):
        ts = TransitionSystem(build_fig3_trace())
        assert ts.run() == (2, 3, 2)
        assert ts.run_slow() == (2, 3, 2)

    def test_intermediate_blocked_set(self):
        """Paper Section 3.2: in state (2,3,1), processes 0 and 1 are
        blocked while process 2 can advance."""
        ts = TransitionSystem(build_fig3_trace())
        assert ts.blocked_processes((2, 3, 1)) == {0, 1}
        assert ts.enabled_processes((2, 3, 1)) == [2]

    def test_terminal_blocked_set_is_everyone(self):
        ts = TransitionSystem(build_fig3_trace())
        assert ts.blocked_processes((2, 3, 2)) == {0, 1, 2}
        assert ts.deadlocked()


class TestRules:
    def test_rule_nb_for_nonblocking(self):
        s0 = [
            Operation(kind=OpKind.ISEND, rank=0, ts=0, peer=1, request=0),
            Operation(kind=OpKind.FINALIZE, rank=0, ts=1),
        ]
        s1 = [Operation(kind=OpKind.FINALIZE, rank=1, ts=0)]
        matched = MatchedTrace(Trace([s0, s1]), CommRegistry(2))
        matched.register_request(0, 0, (0, 0))
        ts = TransitionSystem(matched)
        assert ts.rule_label((0, 0), 0) == RULE_NB

    def test_rule2_requires_match_existence(self):
        """A send with no recorded match can never advance."""
        s0 = [Operation(kind=OpKind.SEND, rank=0, ts=0, peer=1)]
        s1 = [Operation(kind=OpKind.FINALIZE, rank=1, ts=0)]
        matched = MatchedTrace(Trace([s0, s1]), CommRegistry(2))
        ts = TransitionSystem(matched)
        assert ts.run() == (0, 0)
        assert ts.blocked_processes((0, 0)) == {0}

    def test_rule2_receiver_advances_while_sender_active(self):
        """Rule 2 allows the receiver past the rendezvous while the
        sender is still active (paper's 'frees a temporary buffer')."""
        s0 = [
            Operation(kind=OpKind.SEND, rank=0, ts=0, peer=1),
            Operation(kind=OpKind.FINALIZE, rank=0, ts=1),
        ]
        s1 = [
            Operation(kind=OpKind.RECV, rank=1, ts=0, peer=0),
            Operation(kind=OpKind.FINALIZE, rank=1, ts=1),
        ]
        matched = MatchedTrace(Trace([s0, s1]), CommRegistry(2))
        matched.add_p2p_match((0, 0), (1, 0))
        ts = TransitionSystem(matched)
        # From the initial state both can advance independently.
        assert ts.rule_label((0, 0), 0) == RULE_P2P
        assert ts.rule_label((0, 0), 1) == RULE_P2P
        assert ts.step((0, 0), 1) == (0, 1)

    def test_rule3_incomplete_collective_blocks(self):
        s0 = [Operation(kind=OpKind.BARRIER, rank=0, ts=0)]
        s1 = []
        matched = MatchedTrace(Trace([s0, s1]), CommRegistry(2))
        ts = TransitionSystem(matched)
        assert ts.run() == (0, 0)
        assert ts.blocked_processes((0, 0)) == {0}  # rank 1 ran off end

    def test_rule4_waitall_needs_every_target(self):
        s0 = [
            Operation(kind=OpKind.IRECV, rank=0, ts=0, peer=1, tag=1,
                      request=0),
            Operation(kind=OpKind.IRECV, rank=0, ts=1, peer=1, tag=2,
                      request=1),
            Operation(kind=OpKind.WAITALL, rank=0, ts=2, requests=(0, 1)),
        ]
        s1 = [
            Operation(kind=OpKind.SEND, rank=1, ts=0, peer=0, tag=1),
            Operation(kind=OpKind.FINALIZE, rank=1, ts=1),
        ]
        matched = MatchedTrace(Trace([s0, s1]), CommRegistry(2))
        matched.register_request(0, 0, (0, 0))
        matched.register_request(0, 1, (0, 1))
        matched.add_p2p_match((1, 0), (0, 0))
        ts = TransitionSystem(matched)
        term = ts.run()
        assert term[0] == 2  # stuck at the Waitall
        assert ts.rule_label(term, 0) is None

    def test_rule4_waitany_needs_one_target(self):
        s0 = [
            Operation(kind=OpKind.IRECV, rank=0, ts=0, peer=1, tag=1,
                      request=0),
            Operation(kind=OpKind.IRECV, rank=0, ts=1, peer=1, tag=2,
                      request=1),
            Operation(kind=OpKind.WAITANY, rank=0, ts=2, requests=(0, 1)),
            Operation(kind=OpKind.FINALIZE, rank=0, ts=3),
        ]
        s1 = [
            Operation(kind=OpKind.SEND, rank=1, ts=0, peer=0, tag=1),
            Operation(kind=OpKind.FINALIZE, rank=1, ts=1),
        ]
        matched = MatchedTrace(Trace([s0, s1]), CommRegistry(2))
        matched.register_request(0, 0, (0, 0))
        matched.register_request(0, 1, (0, 1))
        matched.add_p2p_match((1, 0), (0, 0))
        ts = TransitionSystem(matched)
        term = ts.run()
        assert term[0] == 3  # Waitany passed via the matched request
        assert ts.rule_label((2, 1), 0) == RULE_ANY

    def test_rule4_ibsend_completes_locally(self):
        """Rule 4 treats explicitly-buffered sends as always matched."""
        s0 = [
            Operation(kind=OpKind.IBSEND, rank=0, ts=0, peer=1, request=0),
            Operation(kind=OpKind.WAIT, rank=0, ts=1, requests=(0,)),
            Operation(kind=OpKind.FINALIZE, rank=0, ts=2),
        ]
        s1 = [Operation(kind=OpKind.FINALIZE, rank=1, ts=0)]
        matched = MatchedTrace(Trace([s0, s1]), CommRegistry(2))
        matched.register_request(0, 0, (0, 0))
        ts = TransitionSystem(matched)
        assert ts.rule_label((1, 0), 0) == RULE_ALL
        assert ts.run() == (2, 0)


class TestMonotonicity:
    def test_enabled_rules_stay_enabled(self):
        """Paper 3.1: a rule enabled for process k stays enabled in any
        pointwise-larger state agreeing on l_k."""
        ts = TransitionSystem(build_fig3_trace())
        import itertools

        lens = ts.trace.lengths()
        states = itertools.product(*[range(l + 1) for l in lens])
        for state in states:
            for k in ts.enabled_processes(state):
                for other in range(3):
                    if other == k:
                        continue
                    bumped = list(state)
                    if bumped[other] < lens[other]:
                        bumped[other] += 1
                        assert ts.can_advance(tuple(bumped), k)


class TestFinishedAndDeadlocked:
    def test_clean_completion(self):
        res = run_relaxed(fig2b_programs(), seed=3)
        ts = TransitionSystem(
            res.matched, semantics=BlockingSemantics.relaxed()
        )
        term = ts.run()
        # With relaxed analysis semantics the trace completes fully.
        assert not ts.blocked_processes(term)
        assert ts.finished_processes(term) == {0, 1, 2}
        assert not ts.deadlocked(term)

    def test_strict_vs_relaxed_analysis_semantics(self):
        res = run_relaxed(fig2b_programs(), seed=3)
        strict_ts = TransitionSystem(res.matched)
        assert strict_ts.deadlocked()

    def test_state_validation(self):
        ts = TransitionSystem(build_fig3_trace())
        with pytest.raises(ValueError):
            ts.blocked_processes((0, 0))  # wrong arity
        with pytest.raises(ValueError):
            ts.blocked_processes((0, 0, 99))
        with pytest.raises(ValueError):
            ts.step((2, 3, 2), 0)  # terminal: no rule applies
