"""The BSP round profiler: rows, records, spans, and the document.

The profiler's in-worker half writes flat rows on the scored busy
path; everything user-visible (record dicts, round/section spans, the
``repro-profile/1`` document) is materialized coordinator-side. These
tests pin the row→record→span→document chain so a slot shuffled in
the flat layout cannot silently misattribute a section.
"""
import pytest

from repro.obs.events import pid_of_shard
from repro.obs.observer import Observer
from repro.obs.prof import (
    PROFILE_FORMAT,
    ROUND_SECTIONS,
    ShardRoundProfiler,
    build_profile,
    render_profile,
    row_anchor,
    rows_to_records,
    spans_from_records,
)


def _profiled_round(prof, round_no, *, msgs_in=0, msgs_out=0):
    prof.begin_round(round_no)
    for section in ROUND_SECTIONS:
        prof.begin_section(section)
        prof.end_section()
    for i in range(msgs_in):
        # first-layer traffic arrives from the coordinator (shard -1)
        prof.note_in((1, -1, round_no, 0), 64)
    for _ in range(msgs_out):
        prof.note_out(0.001, 32)
    prof.end_round()


def test_rows_capture_sections_codec_and_sources():
    prof = ShardRoundProfiler(2, Observer())
    prof.begin_round(5)
    prof.begin_section("decode")
    prof.end_section()
    prof.note_in((1, -1, 5, 0), 100)
    prof.note_in((1, 0, 5, 0), 50)
    prof.note_in(None, 10)  # context-free wire tuples still count
    prof.note_out(0.25, 40)
    prof.end_round()
    rows = prof.take_rows()
    assert len(rows) == 1 and prof.take_rows() == []  # drained
    assert row_anchor(rows[0]) == (5, rows[0][1])
    (rec,) = rows_to_records(2, rows)
    assert rec["round"] == 5 and rec["shard"] == 2
    assert rec["msgs_in"] == 3 and rec["bytes_in"] == 160
    assert rec["msgs_out"] == 1 and rec["bytes_out"] == 40
    assert rec["sources"] == {"c": 1, "s0": 1}
    assert rec["encode_s"] >= 0.25  # note_out folds encode time in
    assert rec["decode_s"] >= 0.0
    assert rec["busy_s"] == pytest.approx(
        sum(rec[s + "_s"] for s in ROUND_SECTIONS)
    )
    assert rec["end_us"] >= rec["start_us"]


def test_take_records_is_rows_then_materialize():
    prof = ShardRoundProfiler(0, Observer())
    _profiled_round(prof, 1, msgs_in=2)
    (rec,) = prof.take_records()
    assert rec["round"] == 1 and rec["msgs_in"] == 2
    assert prof.take_records() == []


def test_wire_context_is_cached_per_round():
    prof = ShardRoundProfiler(3, Observer())
    prof.begin_round(7)
    ctx = prof.wire_context(run_id=11)
    assert ctx == (11, 3, 7, 0)
    assert prof.wire_context(run_id=11) is ctx
    prof.end_round()
    prof.begin_round(8)
    assert prof.wire_context(run_id=11) == (11, 3, 8, 0)


def test_spans_from_records_layout():
    rec = {
        "round": 4, "shard": 1, "start_us": 100.0, "end_us": 400.0,
        "recv_s": 50e-6, "decode_s": 0.0, "step_s": 100e-6,
        "encode_s": 25e-6, "flush_s": 0.0,
        "busy_s": 175e-6, "msgs_in": 6, "bytes_in": 0,
        "msgs_out": 2, "bytes_out": 0, "sources": {},
    }
    spans = spans_from_records(1, [rec], offset_us=1000.0)
    names = [s.name for s in spans]
    # zero-duration sections (decode, flush) are skipped
    assert names == ["round 4", "recv", "step", "encode"]
    rnd = spans[0]
    assert rnd.cat == "shard.round" and rnd.ph == "X"
    assert rnd.pid == pid_of_shard(1) and rnd.tid == 0
    assert rnd.ts == pytest.approx(1100.0)
    assert rnd.dur == pytest.approx(300.0)
    assert rnd.args == {"round": 4, "msgs_in": 6, "msgs_out": 2}
    # sections nest on tid 1, laid end to end from the round start
    sections = spans[1:]
    assert all(
        s.cat == "shard.section" and s.tid == 1 for s in sections
    )
    assert [s.ts for s in sections] == [
        pytest.approx(1100.0), pytest.approx(1150.0),
        pytest.approx(1250.0),
    ]
    assert [s.dur for s in sections] == [
        pytest.approx(50.0), pytest.approx(100.0), pytest.approx(25.0)
    ]


def _record(round_no, shard, busy, msgs=1):
    per = busy / len(ROUND_SECTIONS)
    rec = {
        "round": round_no, "shard": shard,
        "start_us": round_no * 1e3, "end_us": round_no * 1e3 + 500,
        "busy_s": busy, "msgs_in": msgs, "bytes_in": 10 * msgs,
        "msgs_out": msgs, "bytes_out": 20 * msgs,
        "sources": {"c": msgs},
    }
    for s in ROUND_SECTIONS:
        rec[s + "_s"] = per
    return rec


def test_build_profile_attributes_critical_shard_and_skew():
    # round 1: shard 1 is critical (3x busy); round 2: shard 0
    round_records = {
        0: [_record(1, 0, 0.001), _record(2, 0, 0.004)],
        1: [_record(1, 1, 0.003), _record(2, 1, 0.002)],
    }
    observer = Observer()
    doc = build_profile(
        round_records=round_records,
        coord_rounds=[{"round": 1, "span_s": 0.01, "route_s": 0.002}],
        plan=[{"shard": 0, "ranks": 2}, {"shard": 1, "ranks": 2}],
        timing={"modeled_latency_seconds": 0.02},
        ranks=4,
        fan_in=2,
        dropped={1: 7},
        events={0: 10, 1: 20},
        observer=observer,
    )
    assert doc["format"] == PROFILE_FORMAT
    assert doc["run"] == {
        "shards": 2, "rounds": 2, "ranks": 4, "fan_in": 2
    }
    rounds = {e["round"]: e for e in doc["rounds"]}
    assert rounds[1]["critical_shard"] == 1
    assert rounds[2]["critical_shard"] == 0
    assert rounds[1]["skew"] == pytest.approx(0.003 / 0.002)
    assert rounds[1]["coordinator"]["span_ms"] == pytest.approx(10.0)
    # whole-run critical shard: s0 (5ms) over s1 (5ms) ties break low,
    # but here s0 = 5ms vs s1 = 5ms -> equal totals pick the lowest id
    assert doc["critical_shard"] == 0
    assert doc["shards"]["0"]["critical_rounds"] == [2]
    assert doc["shards"]["1"]["critical_rounds"] == [1]
    assert doc["shards"]["1"]["dropped_events"] == 7
    assert doc["shards"]["1"]["events"] == 20
    # codec totals sum across every shard and round
    total_busy_ms = (0.001 + 0.004 + 0.003 + 0.002) * 1e3
    per_section = total_busy_ms / len(ROUND_SECTIONS)
    assert doc["codec"]["encode_ms"] == pytest.approx(per_section)
    assert doc["codec"]["decode_ms"] == pytest.approx(per_section)
    assert doc["codec"]["messages"] == 4
    assert doc["codec"]["bytes_in"] == 40
    assert doc["codec"]["bytes_out"] == 80
    # per-round skew lands in the obs.shard.skew histogram
    skews = observer.metrics.dump_state()["histograms"]["obs.shard.skew"]
    assert len(skews) == 2


def test_render_profile_smoke():
    round_records = {0: [_record(1, 0, 0.001)]}
    doc = build_profile(
        round_records=round_records,
        coord_rounds=[],
        plan=[{"shard": 0, "ranks": 2}],
        timing={"modeled_latency_seconds": 0.01,
                "coordinator_busy_seconds": 0.002},
        ranks=2,
        fan_in=1,
        dropped={},
        events={},
    )
    lines = render_profile(doc)
    text = "\n".join(lines)
    assert "-- sharded run profile --" in text
    assert "-- per-shard totals --" in text
    assert "-- critical-shard timeline (per BSP round) --" in text
    assert "-- codec breakdown --" in text
    assert "critical shard (whole run): s0" in text
