"""Trace and MatchedTrace structures and their validation."""
import pytest

from repro.mpi.communicator import CommRegistry
from repro.mpi.constants import OpKind
from repro.mpi.ops import Operation
from repro.mpi.trace import (
    CollectiveMatch,
    MatchedTrace,
    PendingCollective,
    Trace,
)


def _two_rank_trace():
    s0 = [
        Operation(kind=OpKind.SEND, rank=0, ts=0, peer=1),
        Operation(kind=OpKind.FINALIZE, rank=0, ts=1),
    ]
    s1 = [
        Operation(kind=OpKind.RECV, rank=1, ts=0, peer=0),
        Operation(kind=OpKind.FINALIZE, rank=1, ts=1),
    ]
    return Trace([s0, s1])


def test_trace_indexing():
    trace = _two_rank_trace()
    assert trace.num_processes == 2
    assert trace.lengths() == (2, 2)
    assert trace.op((0, 0)).kind is OpKind.SEND
    assert trace.has_op((1, 1))
    assert not trace.has_op((1, 2))
    assert not trace.has_op((2, 0))
    assert trace.total_ops() == 4


def test_trace_rejects_misfiled_ops():
    bad = [Operation(kind=OpKind.BARRIER, rank=1, ts=0)]
    with pytest.raises(ValueError):
        Trace([bad])  # rank 1 op filed under rank 0


def test_trace_rejects_wrong_timestamps():
    bad = [
        Operation(kind=OpKind.BARRIER, rank=0, ts=0),
        Operation(kind=OpKind.BARRIER, rank=0, ts=5),
    ]
    with pytest.raises(ValueError):
        Trace([bad])


def test_p2p_match_bookkeeping():
    matched = MatchedTrace(_two_rank_trace(), CommRegistry(2))
    matched.add_p2p_match((0, 0), (1, 0))
    assert matched.match_of((0, 0)) == (1, 0)
    assert matched.match_of((1, 0)) == (0, 0)
    with pytest.raises(ValueError):
        matched.add_p2p_match((0, 0), (1, 0))


def test_match_of_requires_p2p_operation():
    matched = MatchedTrace(_two_rank_trace(), CommRegistry(2))
    with pytest.raises(ValueError):
        matched.match_of((0, 1))  # finalize has no p2p partner


def test_validate_rejects_envelope_violations():
    trace = _two_rank_trace()
    matched = MatchedTrace(trace, CommRegistry(2))
    # Match the send with rank 1's finalize-adjacent receive is fine;
    # but matching reversed direction must fail validation.
    matched.add_p2p_match((1, 0), (0, 0))  # recv listed as send
    with pytest.raises(ValueError):
        matched.validate()


def test_collective_match_group_validation():
    s0 = [Operation(kind=OpKind.BARRIER, rank=0, ts=0)]
    s1 = [Operation(kind=OpKind.BARRIER, rank=1, ts=0)]
    trace = Trace([s0, s1])
    matched = MatchedTrace(trace, CommRegistry(2))
    matched.add_collective_match(
        CollectiveMatch(comm_id=0, members=frozenset({(0, 0), (1, 0)}))
    )
    matched.validate()
    assert matched.collective_match((0, 0)) is matched.collective_match((1, 0))


def test_collective_match_incomplete_group_fails_validation():
    s0 = [Operation(kind=OpKind.BARRIER, rank=0, ts=0)]
    s1 = [Operation(kind=OpKind.BARRIER, rank=1, ts=0)]
    matched = MatchedTrace(Trace([s0, s1]), CommRegistry(2))
    matched.add_collective_match(
        CollectiveMatch(comm_id=0, members=frozenset({(0, 0)}))
    )
    with pytest.raises(ValueError):
        matched.validate()


def test_operation_in_two_waves_rejected():
    s0 = [Operation(kind=OpKind.BARRIER, rank=0, ts=0)]
    matched = MatchedTrace(Trace([s0]), CommRegistry(1))
    matched.add_collective_match(
        CollectiveMatch(comm_id=0, members=frozenset({(0, 0)}))
    )
    with pytest.raises(ValueError):
        matched.add_pending_collective(
            PendingCollective(comm_id=0, index=0, arrived={0: (0, 0)})
        )


def test_request_registration_and_completion_targets():
    s0 = [
        Operation(kind=OpKind.ISEND, rank=0, ts=0, peer=1, request=7),
        Operation(kind=OpKind.WAIT, rank=0, ts=1, requests=(7,)),
    ]
    s1 = [Operation(kind=OpKind.RECV, rank=1, ts=0, peer=0)]
    matched = MatchedTrace(Trace([s0, s1]), CommRegistry(2))
    matched.register_request(0, 7, (0, 0))
    assert matched.request_creator(0, 7) == (0, 0)
    assert matched.completion_targets((0, 1)) == ((0, 0),)
    with pytest.raises(ValueError):
        matched.register_request(0, 7, (0, 0))
    with pytest.raises(KeyError):
        matched.request_creator(0, 99)
