"""Blame analysis over synthetic wait-state event streams."""
from repro.obs.causal import (
    analyze_events,
    blame_chain,
    conditions_from_wait_args,
)
from repro.obs.events import PID_TBON, PID_WAIT, TraceEvent
from repro.wfg.detect import detect_deadlock
from repro.wfg.graph import WaitForGraph


def _dwell(rank, start, dur, targets, op="MPI_Recv"):
    return TraceEvent(
        name="dwell",
        cat="waitstate.dwell",
        ph="X",
        ts=start,
        pid=PID_WAIT,
        tid=rank,
        dur=dur,
        args={
            "rank": rank,
            "op": op,
            "or": False,
            "entries": [{"targets": list(targets), "reason": "r"}],
        },
    )


def _final(rank, since, ts, targets, *, detection=1, op="MPI_Send"):
    return TraceEvent(
        name="blocked",
        cat="waitstate.final",
        ph="i",
        ts=ts,
        pid=PID_WAIT,
        tid=rank,
        args={
            "rank": rank,
            "op": op,
            "or": False,
            "entries": [
                {"targets": list(targets), "reason": "no matching receive"}
            ],
            "since": since,
            "detection": detection,
        },
    )


def _resume(detection, finished=(), unblocked=()):
    return TraceEvent(
        name="resume",
        cat="detection",
        ph="i",
        ts=999.0,
        pid=PID_TBON,
        tid=0,
        args={
            "detection": detection,
            "finished_ranks": list(finished),
            "unblocked_ranks": list(unblocked),
        },
    )


class TestDeadlockReconstruction:
    def test_two_rank_cycle_roots_and_full_attribution(self):
        events = [
            _final(0, 10.0, 100.0, [1]),
            _final(1, 20.0, 100.0, [0]),
            _resume(1),
        ]
        report = analyze_events(events)
        assert report.num_ranks == 2
        assert set(report.root_causes) == {0, 1}
        assert report.has_deadlock
        # rank 0 blames its deadlocked successor 1 and vice versa.
        blamed = {iv.rank: iv.blamed for iv in report.intervals}
        assert blamed == {0: 1, 1: 0}
        assert report.total_blocked_us == 90.0 + 80.0
        assert report.attributed_ratio == 1.0
        assert len(report.chain) == 2
        assert "waits for" in report.chain[0]

    def test_critical_path_follows_the_cycle(self):
        events = [
            _final(0, 10.0, 100.0, [1]),  # 90us blocked
            _final(1, 60.0, 100.0, [0]),  # 40us blocked
        ]
        report = analyze_events(events)
        path = report.critical_path
        # Starts at the longest-blocked deadlocked rank.
        assert [hop["rank"] for hop in path] == [0, 1]
        assert path[0]["waits_for"] == 1
        assert path[0]["blocked_us"] == 90.0

    def test_only_last_detection_counts(self):
        events = [
            _final(0, 10.0, 50.0, [1], detection=1),
            _final(0, 10.0, 100.0, [1], detection=2),
            _final(1, 20.0, 100.0, [0], detection=2),
        ]
        report = analyze_events(events)
        terminal = [iv for iv in report.intervals if iv.terminal]
        assert len(terminal) == 2
        assert all(iv.detection == 2 for iv in terminal)

    def test_transient_dwell_blames_immediate_blocker(self):
        events = [
            _dwell(2, 0.0, 30.0, [0]),
            _final(0, 10.0, 100.0, [1]),
            _final(1, 20.0, 100.0, [0]),
        ]
        report = analyze_events(events)
        dwell_iv = next(iv for iv in report.intervals if not iv.terminal)
        assert dwell_iv.blamed == 0
        # 30us of transient wait + 170us terminal, all on roots {0,1}.
        assert report.attributed_ratio == 1.0
        assert report.num_ranks == 3

    def test_releasable_blocked_rank_blames_nearest_deadlocked(self):
        # 2 waits on 0; {0,1} form the cycle. The fixpoint marks 2
        # deadlocked too (its only provider is dead), so its terminal
        # time lands on a deadlocked rank either way.
        events = [
            _final(0, 10.0, 100.0, [1]),
            _final(1, 20.0, 100.0, [0]),
            _final(2, 30.0, 100.0, [0]),
        ]
        report = analyze_events(events)
        blamed = {iv.rank: iv.blamed for iv in report.intervals}
        assert blamed[2] == 0
        assert report.attributed_ratio == 1.0


class TestNoDeadlock:
    def test_dwell_only_run_has_no_roots(self):
        events = [
            _dwell(0, 0.0, 10.0, [1]),
            _dwell(1, 5.0, 20.0, [0]),
            _resume(1, finished=(0, 1)),
        ]
        report = analyze_events(events)
        assert not report.has_deadlock
        assert report.root_causes == ()
        assert report.attributed_ratio == 0.0
        assert report.total_blocked_us == 30.0
        assert report.chain == ()
        assert report.critical_path == []

    def test_empty_event_stream(self):
        report = analyze_events([])
        assert report.num_ranks == 1
        assert not report.has_deadlock
        assert report.intervals == []

    def test_finished_ranks_flow_into_the_graph(self):
        # Rank 1 finished: a wait targeting only finished ranks is
        # permanently unsatisfiable, so rank 0 IS deadlocked — same
        # semantics as the runtime WFG.
        events = [
            _final(0, 10.0, 100.0, [1]),
            _resume(1, finished=(1,)),
        ]
        report = analyze_events(events)
        assert report.finished == {1}
        assert set(report.root_causes) == {0}


class TestConditionMirror:
    def test_collective_wave_expansion(self):
        # 0 and 1 blocked in wave (7, 3); 2 has not activated it.
        coll = {"comm": 7, "wave": 3, "group": [0, 1, 2]}
        args = {
            0: {"rank": 0, "op": "MPI_Barrier", "or": False,
                "entries": [{"collective": dict(coll)}]},
            1: {"rank": 1, "op": "MPI_Barrier", "or": False,
                "entries": [{"collective": dict(coll)}]},
        }
        conditions = conditions_from_wait_args(args)
        # Each waits only on rank 2 (the one not in the wave).
        for rank in (0, 1):
            clauses = conditions[rank].clauses
            assert [[t.rank for t in clause] for clause in clauses] == [[2]]
        graph = WaitForGraph.from_conditions(3, conditions.values())
        result = detect_deadlock(graph)
        assert not result.deadlocked  # 2 is unblocked -> wave can form

    def test_or_semantics_flatten_into_one_clause(self):
        args = {
            0: {
                "rank": 0,
                "op": "MPI_Waitany",
                "or": True,
                "entries": [
                    {"targets": [1], "reason": "a"},
                    {"targets": [2], "reason": "b"},
                ],
            },
        }
        conditions = conditions_from_wait_args(args)
        (clause,) = conditions[0].clauses
        assert sorted(t.rank for t in clause) == [1, 2]

    def test_blame_chain_lines_carry_reasons(self):
        args = {
            0: {"rank": 0, "op": "MPI_Send(to=1)", "or": False,
                "entries": [{"targets": [1], "reason": "no recv"}]},
            1: {"rank": 1, "op": "MPI_Send(to=0)", "or": False,
                "entries": [{"targets": [0], "reason": "no recv"}]},
        }
        conditions = conditions_from_wait_args(args)
        graph = WaitForGraph.from_conditions(2, conditions.values())
        result = detect_deadlock(graph)
        lines = blame_chain(graph, result, conditions)
        assert len(lines) == 2
        assert all("no recv" in line for line in lines)
