"""The symbolic extraction stack: sexpr, cfg, symexec, fragments."""
import ast

import pytest

from repro.analysis.extract import extract_programs
from repro.analysis.symbolic import (
    Fragment,
    classify_source,
    instantiate,
    summarize_source,
)
from repro.analysis.symbolic import sexpr
from repro.analysis.symbolic.cfg import build_call_graph, build_cfg
from repro.analysis.symbolic.symexec import Branch, Repeat, SymOp


# ----------------------------------------------------------------------
# sexpr: the affine domain
# ----------------------------------------------------------------------

def test_affine_arithmetic_closed_forms():
    rank, size = sexpr.RANK, sexpr.SIZE
    right = sexpr.mod(sexpr.add(rank, sexpr.const(1)), size)
    assert right.evaluate(3, 4) == 0
    assert right.evaluate(0, 4) == 1
    assert right.render() == "(rank + 1) % size"
    left = sexpr.mod(sexpr.sub(rank, sexpr.const(1)), size)
    assert left.evaluate(0, 4) == 3


def test_affine_loop_variables_require_bindings():
    w = sexpr.var("w#1.0")
    expr = sexpr.add(w, sexpr.const(2))
    assert expr.evaluate(0, 4, {"w#1.0": 5}) == 7
    with pytest.raises(KeyError):
        expr.evaluate(0, 4)
    # Rendering strips the internal disambiguation suffix.
    assert "w" in expr.render() and "#" not in expr.render()


def test_unsupported_arithmetic_collapses_to_unknown():
    modded = sexpr.mod(sexpr.RANK, sexpr.SIZE)
    assert sexpr.add(modded, sexpr.const(1)) is sexpr.UNKNOWN
    assert sexpr.mul(sexpr.RANK, sexpr.RANK) is sexpr.UNKNOWN
    assert sexpr.join(sexpr.const(1), sexpr.const(2)) is sexpr.UNKNOWN
    assert sexpr.join(sexpr.const(1), sexpr.const(1)) == sexpr.const(1)


def test_cond_negation_and_evaluation():
    cond = sexpr.Cond(sexpr.RANK, sexpr.Relop.EQ, sexpr.const(0))
    assert cond.evaluate(0, 4) is True
    assert cond.negate().evaluate(0, 4) is False
    parity = sexpr.Cond(
        sexpr.RANK, sexpr.Relop.EQ, sexpr.const(0), lhs_mod=2
    )
    assert parity.evaluate(2, 4) is True
    assert parity.evaluate(3, 4) is False


# ----------------------------------------------------------------------
# cfg
# ----------------------------------------------------------------------

def test_cfg_finds_loops_and_branches():
    tree = ast.parse(
        "def f(r):\n"
        "    if r.rank == 0:\n"
        "        yield r.send(1)\n"
        "    for i in range(3):\n"
        "        yield r.recv()\n"
    )
    cfg = build_cfg(tree.body[0])
    assert len(cfg.loops) == 1
    assert cfg.loops[0].kind == "for"
    labels = {
        label
        for block in cfg.blocks.values()
        for label, _ in block.successors
    }
    assert {"true", "loop", "back", "exit"} <= labels


def test_call_graph_detects_recursion():
    tree = ast.parse(
        "def a(r):\n    yield from b(r)\n"
        "def b(r):\n    yield from a(r)\n"
        "def c(r):\n    yield r.send(0)\n"
    )
    graph = build_call_graph(tree)
    assert graph.recursive_functions() == {"a", "b"}
    assert "c" not in graph.recursive_functions()


# ----------------------------------------------------------------------
# symexec: summaries and instantiation vs. the generator extractor
# ----------------------------------------------------------------------

RING = """
def ring(r):
    right = (r.rank + 1) % r.size
    left = (r.rank - 1) % r.size
    for i in range(3):
        yield r.send(right, tag=i)
        yield r.recv(source=left, tag=i)
    yield r.finalize()
"""

MASTER = """
def master(r):
    if r.rank == 0:
        for w in range(1, r.size):
            yield r.recv(source=w, tag=7)
    else:
        yield r.send(0, tag=7)
    yield r.finalize()
"""

HALO = """
def halo(r):
    up = (r.rank + 1) % r.size
    down = (r.rank - 1) % r.size
    for _ in range(4):
        yield from r.sendrecv(up, source=down, sendtag=1, recvtag=1)
    yield r.finalize()
"""

HELPER = """
def exchange(r, peer, n):
    for _ in range(n):
        req = yield r.isend(peer, tag=3)
        yield r.wait(req)

def prog(r):
    peer = (r.rank + 1) % r.size
    yield from exchange(r, peer, 2)
    yield r.barrier()
    yield r.finalize()
"""


def _programs(source, name, p):
    namespace = {}
    exec(source, namespace)
    return [namespace[name]] * p


def _assert_matches_extractor(source, name, p=4):
    """The symbolic instantiation must equal the generator-driven
    extraction, field for field."""
    summaries = summarize_source(source, "<test>")
    summary = next(s for s in summaries if s.name == name)
    assert summary.supported, summary.reason
    extraction = extract_programs(_programs(source, name, p))
    assert extraction.exact or extraction.wildcard_exact
    for rank in range(p):
        ops = instantiate(summary.terms, rank, p)
        want = extraction.sequences[rank]
        assert len(ops) == len(want), f"rank {rank} length"
        for got, exp in zip(ops, want):
            assert got.kind is exp.kind
            assert got.rank == exp.rank
            assert got.ts == exp.ts
            assert got.peer == exp.peer
            assert got.tag == exp.tag
            assert got.request == exp.request
            assert got.requests == exp.requests
            assert got.comm_id == exp.comm_id
            assert got.sendrecv_group == exp.sendrecv_group


def test_ring_unrolls_to_extractor_sequences():
    _assert_matches_extractor(RING, "ring")


def test_role_split_master_matches_extractor():
    _assert_matches_extractor(MASTER, "master", p=5)


def test_sendrecv_decomposition_matches_extractor():
    _assert_matches_extractor(HALO, "halo")


def test_helper_inlining_matches_extractor():
    _assert_matches_extractor(HELPER, "prog")


def test_master_summary_keeps_loop_symbolic():
    summary = summarize_source(MASTER, "<test>")[0]
    branch = summary.terms[0]
    assert isinstance(branch, Branch)
    (repeat,) = [t for t in branch.then if isinstance(t, Repeat)]
    assert repeat.count.render() == "size - 1"
    assert repeat.var is not None
    (recv,) = [t for t in repeat.body if isinstance(t, SymOp)]
    assert recv.peer is not None and recv.peer.free_vars()


def test_while_loop_is_reported_unsupported():
    src = "def spin(r):\n    while True:\n        yield r.barrier()\n"
    summary = summarize_source(src, "<test>")[0]
    assert not summary.supported
    assert summary.reason_check == "loop-unsupported"
    assert summary.reason_line == 2
    assert any(
        f.check == "loop-unsupported" for f in summary.notes
    )


def test_recursive_helper_is_reported_unsupported():
    src = (
        "def helper(r):\n"
        "    yield from helper(r)\n"
        "def prog(r):\n"
        "    yield from helper(r)\n"
        "    yield r.finalize()\n"
    )
    summary = next(
        s for s in summarize_source(src, "<test>") if s.name == "prog"
    )
    assert not summary.supported
    assert "recursive" in summary.reason


# ----------------------------------------------------------------------
# fragments: the AST-path classifier
# ----------------------------------------------------------------------

def test_classifier_labels_and_provenance():
    labels = {
        c.name: c for c in classify_source(RING + MASTER, "demo.py")
    }
    assert labels["ring"].fragment is Fragment.SEQ_DETERMINISTIC
    master = labels["master"]
    assert master.fragment is Fragment.SEQ_WILDCARD_FREE_LOOPS
    assert master.role_splits and master.role_splits[0][0] == "rank == 0"
    assert master.loops and master.loops[0][0] == "size - 1"


def test_classifier_flags_wildcards_undecidable():
    src = (
        "def w(r):\n"
        "    yield r.recv()\n"
        "    yield r.finalize()\n"
    )
    (cl,) = classify_source(src, "w.py")
    assert cl.fragment is Fragment.UNDECIDABLE
    assert "ANY_SOURCE" in cl.reason
    assert cl.reason_line == 2
