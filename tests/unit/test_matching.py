"""Centralized matching engines vs. runtime ground truth and edge cases."""
import pytest

from repro.matching import match_collectives, match_point_to_point, match_trace
from repro.mpi.communicator import CommRegistry
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, OpKind
from repro.mpi.ops import Operation
from repro.mpi.trace import Trace
from repro.util.errors import CollectiveMismatchError, TraceError
from repro.workloads import fig2b_programs, stress_programs
from repro.workloads.randomgen import safe_program_set
from tests.conftest import run_relaxed


class TestP2PMatcher:
    def test_directed_in_order(self):
        s0 = [
            Operation(kind=OpKind.SEND, rank=0, ts=0, peer=1, tag=0),
            Operation(kind=OpKind.SEND, rank=0, ts=1, peer=1, tag=0),
        ]
        s1 = [
            Operation(kind=OpKind.RECV, rank=1, ts=0, peer=0, tag=0),
            Operation(kind=OpKind.RECV, rank=1, ts=1, peer=0, tag=0),
        ]
        send_of, _ = match_point_to_point(Trace([s0, s1]))
        assert send_of == {(1, 0): (0, 0), (1, 1): (0, 1)}

    def test_tag_selective_out_of_order(self):
        s0 = [
            Operation(kind=OpKind.SEND, rank=0, ts=0, peer=1, tag=1),
            Operation(kind=OpKind.SEND, rank=0, ts=1, peer=1, tag=2),
        ]
        s1 = [
            Operation(kind=OpKind.RECV, rank=1, ts=0, peer=0, tag=2),
            Operation(kind=OpKind.RECV, rank=1, ts=1, peer=0, tag=ANY_TAG),
        ]
        send_of, _ = match_point_to_point(Trace([s0, s1]))
        assert send_of == {(1, 0): (0, 1), (1, 1): (0, 0)}

    def test_wildcard_uses_observed_decision(self):
        s0 = [Operation(kind=OpKind.SEND, rank=0, ts=0, peer=2)]
        s1 = [Operation(kind=OpKind.SEND, rank=1, ts=0, peer=2)]
        s2 = [
            Operation(kind=OpKind.RECV, rank=2, ts=0, peer=ANY_SOURCE,
                      observed_peer=1),
            Operation(kind=OpKind.RECV, rank=2, ts=1, peer=ANY_SOURCE,
                      observed_peer=0),
        ]
        send_of, _ = match_point_to_point(Trace([s0, s1, s2]))
        assert send_of == {(2, 0): (1, 0), (2, 1): (0, 0)}

    def test_unresolved_wildcard_stays_unmatched(self):
        s0 = [Operation(kind=OpKind.RECV, rank=0, ts=0, peer=ANY_SOURCE)]
        send_of, _ = match_point_to_point(Trace([s0, []]))
        assert send_of == {}

    def test_observed_source_without_send_is_trace_error(self):
        s0 = [Operation(kind=OpKind.RECV, rank=0, ts=0, peer=ANY_SOURCE,
                        observed_peer=1)]
        with pytest.raises(TraceError):
            match_point_to_point(Trace([s0, []]))

    def test_probe_does_not_consume(self):
        s0 = [Operation(kind=OpKind.SEND, rank=0, ts=0, peer=1, tag=7)]
        s1 = [
            Operation(kind=OpKind.PROBE, rank=1, ts=0, peer=0, tag=7,
                      observed_peer=0),
            Operation(kind=OpKind.RECV, rank=1, ts=1, peer=0, tag=7),
        ]
        send_of, probes = match_point_to_point(Trace([s0, s1]))
        assert probes == {(1, 0): (0, 0)}
        assert send_of == {(1, 1): (0, 0)}

    def test_matches_runtime_on_random_programs(self):
        for seed in range(10):
            gen = safe_program_set(4, events=14, seed=seed,
                                   allow_wildcards=True)
            res = run_relaxed(gen.programs(), seed=seed)
            if res.deadlocked:
                continue
            send_of, _ = match_point_to_point(res.trace)
            assert send_of == res.matched.send_of, seed


class TestCollectiveMatcher:
    def test_waves_in_per_comm_order(self):
        res = run_relaxed(stress_programs(4, iterations=20), seed=1)
        complete, pending = match_collectives(res.trace, res.matched.comms)
        assert len(complete) == 2  # barriers at iterations 10 and 20
        assert not pending

    def test_kind_mismatch_raises(self):
        s0 = [Operation(kind=OpKind.BARRIER, rank=0, ts=0)]
        s1 = [Operation(kind=OpKind.ALLREDUCE, rank=1, ts=0)]
        with pytest.raises(CollectiveMismatchError):
            match_collectives(Trace([s0, s1]), CommRegistry(2))

    def test_root_mismatch_raises(self):
        s0 = [Operation(kind=OpKind.REDUCE, rank=0, ts=0, root=0)]
        s1 = [Operation(kind=OpKind.REDUCE, rank=1, ts=0, root=1)]
        with pytest.raises(CollectiveMismatchError):
            match_collectives(Trace([s0, s1]), CommRegistry(2))

    def test_incomplete_wave_reported_pending(self):
        s0 = [Operation(kind=OpKind.BARRIER, rank=0, ts=0)]
        complete, pending = match_collectives(
            Trace([s0, []]), CommRegistry(2)
        )
        assert not complete
        assert len(pending) == 1
        assert pending[0].arrived == {0: (0, 0)}

    def test_nonmember_participation_raises(self):
        reg = CommRegistry(3)
        sub = reg.create([0, 1])
        s2 = [Operation(kind=OpKind.BARRIER, rank=2, ts=0,
                        comm_id=sub.comm_id)]
        with pytest.raises(CollectiveMismatchError):
            match_collectives(Trace([[], [], s2]), reg)


class TestFullMatchTrace:
    def test_equals_runtime_ground_truth(self):
        res = run_relaxed(fig2b_programs(), seed=3)
        rebuilt = match_trace(res.trace, res.matched.comms)
        assert rebuilt.send_of == res.matched.send_of
        assert rebuilt.request_op == res.matched.request_op
        a = sorted((c.comm_id, tuple(sorted(c.members)))
                   for c in rebuilt.collectives)
        b = sorted((c.comm_id, tuple(sorted(c.members)))
                   for c in res.matched.collectives)
        assert a == b
        rebuilt.validate()
