"""Operation records: validation, envelope matching, rendering."""
import pytest

from repro.mpi.constants import ANY_SOURCE, ANY_TAG, PROC_NULL, OpKind
from repro.mpi.ops import Operation


def _send(rank=0, ts=0, peer=1, tag=0, comm=0):
    return Operation(kind=OpKind.SEND, rank=rank, ts=ts, peer=peer,
                     tag=tag, comm_id=comm)


def _recv(rank=1, ts=0, peer=0, tag=0, comm=0):
    return Operation(kind=OpKind.RECV, rank=rank, ts=ts, peer=peer,
                     tag=tag, comm_id=comm)


class TestValidation:
    def test_p2p_requires_peer(self):
        with pytest.raises(ValueError):
            Operation(kind=OpKind.SEND, rank=0, ts=0)

    def test_send_cannot_use_any_source(self):
        with pytest.raises(ValueError):
            Operation(kind=OpKind.SEND, rank=0, ts=0, peer=ANY_SOURCE)

    def test_nonblocking_requires_request(self):
        with pytest.raises(ValueError):
            Operation(kind=OpKind.ISEND, rank=0, ts=0, peer=1)

    def test_completion_requires_requests(self):
        with pytest.raises(ValueError):
            Operation(kind=OpKind.WAITALL, rank=0, ts=0)

    def test_negative_identifiers_rejected(self):
        with pytest.raises(ValueError):
            Operation(kind=OpKind.BARRIER, rank=-1, ts=0)
        with pytest.raises(ValueError):
            Operation(kind=OpKind.BARRIER, rank=0, ts=-3)


class TestClassification:
    def test_ref_is_paper_pair(self):
        assert _send(rank=3, ts=7).ref == (3, 7)

    def test_wildcard_receive(self):
        assert _recv(peer=ANY_SOURCE).is_wildcard_receive()
        assert not _recv(peer=0).is_wildcard_receive()
        probe = Operation(kind=OpKind.PROBE, rank=1, ts=0, peer=ANY_SOURCE)
        assert probe.is_wildcard_receive()

    def test_effective_source_resolves_wildcards(self):
        recv = _recv(peer=ANY_SOURCE)
        assert recv.effective_source() is None
        recv.observed_peer = 5
        assert recv.effective_source() == 5
        assert _recv(peer=2).effective_source() == 2

    def test_effective_source_rejects_sends(self):
        with pytest.raises(ValueError):
            _send().effective_source()


class TestEnvelopeMatching:
    def test_exact_match(self):
        assert _recv(rank=1, peer=0, tag=3).envelope_matches_send(
            _send(rank=0, peer=1, tag=3)
        )

    def test_tag_mismatch(self):
        assert not _recv(tag=3).envelope_matches_send(_send(tag=4))

    def test_any_tag_matches_all(self):
        assert _recv(tag=ANY_TAG).envelope_matches_send(_send(tag=4))

    def test_any_source_matches_all_senders(self):
        recv = _recv(rank=1, peer=ANY_SOURCE)
        assert recv.envelope_matches_send(_send(rank=0, peer=1))
        assert recv.envelope_matches_send(
            Operation(kind=OpKind.SEND, rank=7, ts=0, peer=1)
        )

    def test_communicator_separates_matching(self):
        assert not _recv(comm=1).envelope_matches_send(_send(comm=0))

    def test_destination_must_be_receiver(self):
        assert not _recv(rank=2, peer=0).envelope_matches_send(
            _send(rank=0, peer=1)
        )

    def test_source_restriction(self):
        assert not _recv(peer=3).envelope_matches_send(_send(rank=0))


class TestDescribe:
    def test_send_rendering(self):
        assert _send(rank=0, ts=2, peer=1).describe() == "MPI_Send(to=1)@0:2"

    def test_wildcard_rendering(self):
        assert "from=ANY" in _recv(peer=ANY_SOURCE).describe()

    def test_tag_and_comm_shown_when_nondefault(self):
        text = _send(tag=5, comm=2).describe()
        assert "tag=5" in text and "comm=2" in text

    def test_sendrecv_marker(self):
        op = Operation(
            kind=OpKind.ISEND, rank=0, ts=0, peer=1, request=0,
            sendrecv_group=3,
        )
        assert "MPI_Sendrecv" in op.describe()

    def test_rooted_collective_rendering(self):
        op = Operation(kind=OpKind.REDUCE, rank=0, ts=0, root=2)
        assert "root=2" in op.describe()
