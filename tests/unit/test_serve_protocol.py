"""The serve building blocks in isolation: envelope codec, job specs,
tenant quotas, and the worker pool."""
import time

import pytest

from repro.serve import protocol
from repro.serve.jobs import (
    DONE,
    FAILED,
    Job,
    JobError,
    JobSpec,
    JobTable,
    QUEUED,
)
from repro.serve.pool import QueueFull, WorkerPool
from repro.serve.quotas import QuotaExceeded, TenantQuotas


class TestEnvelopes:
    def test_request_roundtrip(self):
        env = protocol.make_request("submit", "c1", workload="fig2a")
        parsed = protocol.parse_envelope(
            protocol.encode(env).decode("utf-8").strip()
        )
        assert parsed == env
        assert parsed["format"] == protocol.SERVE_FORMAT

    def test_response_and_error_shapes(self):
        ok = protocol.make_response("c1", {"job": "job-0001"})
        assert ok["ok"] and ok["result"]["job"] == "job-0001"
        err = protocol.make_error(
            "c1", "over-quota", "busy", retry_after=1.5
        )
        assert not err["ok"]
        assert err["error"]["retryable"] is True
        assert err["error"]["retry_after"] == 1.5
        fatal = protocol.make_error("c1", "not-found", "no such job")
        assert fatal["error"]["retryable"] is False

    def test_unknown_op_is_rejected_both_ways(self):
        with pytest.raises(protocol.ProtocolError, match="unknown op"):
            protocol.make_request("frobnicate", "c1")
        line = (
            '{"format": "repro-serve/1", "kind": "request", '
            '"id": "c1", "op": "frobnicate"}'
        )
        with pytest.raises(protocol.ProtocolError, match="unknown op"):
            protocol.parse_envelope(line)

    def test_bad_lines_are_protocol_errors(self):
        for line in (
            "not json",
            "[1, 2]",
            '{"format": "repro-serve/9", "kind": "request", "id": "x"}',
            '{"format": "repro-witness/1", "kind": "request", "id": "x"}',
            '{"format": "repro-serve/1", "kind": "telegram", "id": "x"}',
            '{"format": "repro-serve/1", "kind": "request", "id": ""}',
        ):
            with pytest.raises(protocol.ProtocolError):
                protocol.parse_envelope(line)

    def test_unknown_error_code_is_a_programming_error(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.make_error("c1", "teapot", "short and stout")


class TestJobSpec:
    def test_workload_spec(self):
        spec = JobSpec.from_request({"workload": "fig2a", "ranks": 2})
        assert spec.kind == "workload" and spec.ranks == 2

    def test_program_spec_with_analysis(self):
        spec = JobSpec.from_request(
            {"source": "x = 1", "analysis": "verify"}
        )
        assert spec.kind == "program" and spec.op == "verify"

    def test_trace_spec(self):
        assert JobSpec.from_request({"trace": {}}).kind == "trace"

    def test_empty_submit_is_rejected(self):
        with pytest.raises(JobError, match="one of"):
            JobSpec.from_request({})

    def test_verify_needs_a_program(self):
        with pytest.raises(JobError, match="program source"):
            JobSpec.from_request(
                {"workload": "fig2a", "analysis": "verify"}
            )

    def test_bad_ranks_is_rejected(self):
        with pytest.raises(JobError, match="ranks"):
            JobSpec.from_request({"workload": "fig2a", "ranks": 0})


class TestJobTable:
    def test_ids_are_sequential_and_lookup_works(self):
        table = JobTable()
        spec = JobSpec.from_request({"workload": "fig2a"})
        first = table.create("alice", spec)
        second = table.create("bob", spec)
        assert [first.id, second.id] == ["job-0001", "job-0002"]
        assert table.get("job-0002") is second
        assert table.get("nope") is None
        assert table.counts()[QUEUED] == 2


class TestTenantQuotas:
    def test_limit_enforced_per_tenant(self):
        quotas = TenantQuotas(2)
        quotas.acquire("a")
        quotas.acquire("a")
        quotas.acquire("b")  # other tenants unaffected
        with pytest.raises(QuotaExceeded) as excinfo:
            quotas.acquire("a")
        assert excinfo.value.retry_after > 0
        quotas.release("a")
        quotas.acquire("a")  # slot freed

    def test_snapshot_counts(self):
        quotas = TenantQuotas(4)
        quotas.acquire("a")
        quotas.acquire("a")
        quotas.release("a", latency=0.2)
        snap = quotas.snapshot()
        assert snap["a"]["submitted"] == 2
        assert snap["a"]["in_flight"] == 1
        assert snap["a"]["completed"] == 1


class TestWorkerPool:
    def test_jobs_run_and_complete(self):
        finished = []
        pool = WorkerPool(
            workers=2, queue_limit=8, on_complete=finished.append
        )
        table = JobTable()
        jobs = [
            table.create(
                "t", JobSpec.from_request({"workload": "fig2a", "ranks": 2})
            )
            for _ in range(3)
        ]
        for job in jobs:
            pool.submit(job)
        for job in jobs:
            assert job.done.wait(60)
            assert job.state == DONE
            assert job.result["verdict"] == "deadlock"
        assert len(finished) == 3
        assert pool.drain(timeout=30)

    def test_queue_full_rejects(self):
        pool = WorkerPool(workers=1, queue_limit=1)
        table = JobTable()
        spec = JobSpec.from_request({"source": "import time\ntime.sleep(0.5)\ndef w(rank):\n    yield rank.finalize()\nLINT_RANKS = 1\n"})
        blocker = table.create("t", spec)
        pool.submit(blocker)
        time.sleep(0.1)  # let the worker pick it up
        queued = table.create("t", spec)
        pool.submit(queued)
        overflow = table.create("t", spec)
        with pytest.raises(QueueFull) as excinfo:
            pool.submit(overflow)
        assert excinfo.value.retry_after > 0
        assert blocker.done.wait(30) and queued.done.wait(30)
        assert pool.drain(timeout=30)

    def test_failed_job_records_the_error(self):
        pool = WorkerPool(workers=1, queue_limit=4)
        table = JobTable()
        job = table.create(
            "t", JobSpec.from_request({"workload": "no-such-workload"})
        )
        pool.submit(job)
        assert job.done.wait(30)
        assert job.state == FAILED
        assert "unknown workload" in (job.error or "")
        assert pool.drain(timeout=30)

    def test_drain_is_idempotent_and_leaves_no_threads(self):
        pool = WorkerPool(workers=2, queue_limit=4)
        assert pool.drain(timeout=30)
        assert pool.drain(timeout=30)
        assert pool.running() == 0
        with pytest.raises(Exception):
            pool.submit(
                JobTable().create(
                    "t", JobSpec.from_request({"workload": "fig2a"})
                )
            )
