"""The non-deadlock correctness checks."""
import pytest

from repro.checks import LocalChecker, Severity, run_all_checks
from repro.mpi.communicator import CommRegistry
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, PROC_NULL, OpKind
from repro.mpi.ops import Operation
from repro.workloads import fig2b_programs, stress_programs
from tests.conftest import run_relaxed


def _checker(p=4):
    return LocalChecker(CommRegistry(p))


def _by_check(findings):
    out = {}
    for f in findings:
        out.setdefault(f.check, []).append(f)
    return out


class TestLocalChecks:
    def test_clean_stream(self):
        c = _checker()
        c.check_op(Operation(kind=OpKind.SEND, rank=0, ts=0, peer=1, tag=3))
        c.check_op(Operation(kind=OpKind.BARRIER, rank=0, ts=1))
        c.check_op(Operation(kind=OpKind.FINALIZE, rank=0, ts=2))
        assert not c.findings

    def test_peer_out_of_range(self):
        c = _checker(2)
        c.check_op(Operation(kind=OpKind.SEND, rank=0, ts=0, peer=9))
        assert _by_check(c.findings)["invalid-peer"][0].severity is (
            Severity.ERROR
        )

    def test_proc_null_peer_is_fine(self):
        c = _checker(2)
        c.check_op(Operation(kind=OpKind.SEND, rank=0, ts=0, peer=PROC_NULL))
        assert not c.findings

    def test_self_message_warning(self):
        c = _checker()
        c.check_op(Operation(kind=OpKind.SEND, rank=1, ts=0, peer=1))
        assert _by_check(c.findings)["self-message"][0].severity is (
            Severity.WARNING
        )

    def test_negative_tag(self):
        c = _checker()
        c.check_op(Operation(kind=OpKind.SEND, rank=0, ts=0, peer=1, tag=-4))
        assert "invalid-tag" in _by_check(c.findings)

    def test_any_tag_on_send_rejected_any_tag_on_recv_ok(self):
        c = _checker()
        c.check_op(Operation(kind=OpKind.RECV, rank=0, ts=0,
                             peer=ANY_SOURCE, tag=ANY_TAG))
        assert not c.findings
        c.check_op(Operation(kind=OpKind.SEND, rank=0, ts=1, peer=1,
                             tag=ANY_TAG))
        assert "invalid-tag" in _by_check(c.findings)

    def test_tag_above_portable_ub(self):
        c = _checker()
        c.check_op(Operation(kind=OpKind.SEND, rank=0, ts=0, peer=1,
                             tag=1 << 20))
        assert "tag-above-ub" in _by_check(c.findings)

    def test_invalid_root(self):
        c = _checker(3)
        c.check_op(Operation(kind=OpKind.BCAST, rank=0, ts=0, root=7))
        assert "invalid-root" in _by_check(c.findings)

    def test_unknown_communicator(self):
        c = _checker()
        c.check_op(Operation(kind=OpKind.BARRIER, rank=0, ts=0, comm_id=42))
        assert "invalid-communicator" in _by_check(c.findings)

    def test_call_after_finalize(self):
        c = _checker()
        c.check_op(Operation(kind=OpKind.FINALIZE, rank=0, ts=0))
        c.check_op(Operation(kind=OpKind.BARRIER, rank=0, ts=1))
        assert "call-after-finalize" in _by_check(c.findings)

    def test_unknown_request(self):
        c = _checker()
        c.check_op(Operation(kind=OpKind.WAIT, rank=0, ts=0, requests=(5,)))
        assert "unknown-request" in _by_check(c.findings)

    def test_request_completed_twice(self):
        c = _checker()
        c.check_op(Operation(kind=OpKind.ISEND, rank=0, ts=0, peer=1,
                             request=0))
        c.check_op(Operation(kind=OpKind.WAIT, rank=0, ts=1, requests=(0,)))
        c.check_op(Operation(kind=OpKind.WAIT, rank=0, ts=2, requests=(0,)))
        assert "unknown-request" in _by_check(c.findings)

    def test_request_leak_at_finalize(self):
        c = _checker()
        c.check_op(Operation(kind=OpKind.IRECV, rank=0, ts=0, peer=1,
                             request=3))
        c.check_op(Operation(kind=OpKind.FINALIZE, rank=0, ts=1))
        assert "request-leak" in _by_check(c.findings)

    def test_finding_render(self):
        c = _checker()
        c.check_op(Operation(kind=OpKind.SEND, rank=0, ts=0, peer=9))
        text = c.findings[0].render()
        assert "ERROR" in text and "rank 0" in text


class TestTraceChecks:
    def test_clean_run_yields_no_errors(self):
        res = run_relaxed(stress_programs(4, iterations=5), seed=1)
        findings = run_all_checks(res.matched)
        assert not [f for f in findings if f.severity is Severity.ERROR]

    def test_lost_message_reported(self):
        def sender(r):
            yield r.bsend(dest=1, tag=9)
            yield r.finalize()

        def silent(r):
            yield r.finalize()

        res = run_relaxed([sender, silent], seed=0)
        findings = run_all_checks(res.matched)
        checks = {f.check for f in findings}
        assert "lost-message" in checks

    def test_missing_finalize_on_hung_run(self):
        def victim(r):
            yield r.recv(source=1)

        def silent(r):
            yield r.finalize()

        res = run_relaxed([victim, silent], seed=0)
        findings = run_all_checks(res.matched)
        missing = [f for f in findings if f.check == "missing-finalize"]
        assert [f.rank for f in missing] == [0]

    def test_fig2b_run_is_check_clean(self):
        res = run_relaxed(fig2b_programs(), seed=3)
        findings = run_all_checks(res.matched)
        assert not [f for f in findings if f.severity is Severity.ERROR]
