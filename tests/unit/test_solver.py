"""The affine size-set solver behind ``repro prove``.

SizeSet is the prover's answer type: an eventually-periodic set of
process counts. The tests pin the three things the soundness argument
leans on: ``from_predicate`` builds *exact* sets (and refuses
non-periodic input instead of extrapolating), the set algebra is closed
under re-alignment, and System's quantified services agree with brute
force over the sampled range.
"""
import pytest

from repro.analysis.symbolic import sexpr
from repro.analysis.symbolic.sexpr import Cond
from repro.analysis.symbolic.solver import (
    MIN_SIZE,
    PeriodicityError,
    SizeSet,
    System,
    suggest_bounds,
)


# ----------------------------------------------------------------------
# SizeSet construction
# ----------------------------------------------------------------------

def test_empty_and_all():
    assert SizeSet.empty().is_empty()
    assert not SizeSet.empty().contains(7)
    assert SizeSet.all_sizes().is_all()
    assert 2 in SizeSet.all_sizes()
    assert 1 not in SizeSet.all_sizes()  # sizes start at MIN_SIZE
    assert SizeSet.empty().min_value() is None
    assert SizeSet.all_sizes().min_value() == MIN_SIZE


def test_from_predicate_is_exact_on_the_sampled_range():
    even = SizeSet.from_predicate(lambda s: s % 2 == 0, 6, 2)
    for s in range(MIN_SIZE, 40):
        assert (s in even) == (s % 2 == 0)
    assert even.min_value() == 2
    assert even.sample(3) == [2, 4, 6]


def test_from_predicate_eventually_periodic_with_irregular_prefix():
    # True only at 3 below the threshold, then at odd sizes above it.
    pred = lambda s: s == 3 if s < 10 else s % 2 == 1
    got = SizeSet.from_predicate(pred, 10, 2)
    assert got.explicit == frozenset({3})
    for s in range(2, 30):
        assert (s in got) == pred(s)


def test_from_predicate_refuses_nonperiodic_input():
    # Powers of two are not eventually periodic; the claimed period
    # must fail verification rather than silently extrapolate.
    with pytest.raises(PeriodicityError) as err:
        SizeSet.from_predicate(
            lambda s: (s & (s - 1)) == 0, 4, 2
        )
    assert err.value.size >= 4


def test_threshold_and_period_floors():
    got = SizeSet.from_predicate(lambda s: True, 0, 0)
    assert got.threshold == MIN_SIZE
    assert got.period == 1
    assert got.is_all()


# ----------------------------------------------------------------------
# Set algebra
# ----------------------------------------------------------------------

def _brute(sizeset, hi=60):
    return {s for s in range(MIN_SIZE, hi) if s in sizeset}


def test_algebra_matches_brute_force_under_realignment():
    even = SizeSet.from_predicate(lambda s: s % 2 == 0, 4, 2)
    third = SizeSet.from_predicate(lambda s: s % 3 == 0, 8, 3)
    assert _brute(even.union(third)) == _brute(even) | _brute(third)
    assert _brute(even.intersect(third)) == _brute(even) & _brute(third)
    assert _brute(even.difference(third)) == _brute(even) - _brute(third)
    assert _brute(even.complement()) == (
        set(range(MIN_SIZE, 60)) - _brute(even)
    )


def test_semantic_equality_ignores_representation():
    a = SizeSet.from_predicate(lambda s: s % 2 == 0, 4, 2)
    b = SizeSet.from_predicate(lambda s: s % 2 == 0, 10, 4)
    assert a != b  # different frames
    assert a.semantically_equal(b)
    assert not a.semantically_equal(a.complement())


def test_complement_involution():
    odd = SizeSet.from_predicate(lambda s: s % 2 == 1, 6, 2)
    assert odd.complement().complement().semantically_equal(odd)
    assert odd.union(odd.complement()).is_all()
    assert odd.intersect(odd.complement()).is_empty()


def test_min_value_in_the_periodic_tail():
    # No explicit members; the first member sits above the threshold.
    tail = SizeSet(10, 4, frozenset(), frozenset({3}))
    assert tail.min_value() == 11
    assert 11 in tail and 15 in tail and 12 not in tail


def test_render_is_human_readable():
    assert SizeSet.empty().render() == "no p"
    assert SizeSet.all_sizes().render() == "all p >= 2"
    finite = SizeSet(6, 1, frozenset({2, 4}), frozenset())
    assert finite.render() == "p in {2, 4}"
    periodic = SizeSet(10, 2, frozenset(), frozenset({0}))
    assert periodic.render() == "p % 2 in {0} for p >= 10"


# ----------------------------------------------------------------------
# System: satisfiability, projection, implication
# ----------------------------------------------------------------------

def _cond(lhs, op, rhs, lhs_mod=None):
    return Cond(lhs=lhs, op=op, rhs=rhs, lhs_mod=lhs_mod)


def test_project_sizes_existential_rank():
    # "some rank is odd" — true exactly when size >= 2 (rank 1 exists).
    system = System(
        (_cond(sexpr.RANK, "==", sexpr.const(1), lhs_mod=2),)
    )
    got = system.project_sizes(6, 2)
    assert got.is_all()
    assert system.satisfiable(6, 2)


def test_unsatisfiable_system():
    # rank == size: ranks live in [0, size), so this never holds.
    system = System((_cond(sexpr.RANK, "==", sexpr.SIZE),))
    assert not system.satisfiable(6, 1)
    assert system.project_sizes(6, 1).is_empty()


def test_projection_yields_residue_classes():
    # rank == size - 1 and rank odd: the last rank is odd iff size
    # is even.
    system = System(
        (
            _cond(sexpr.RANK, "==", sexpr.add(sexpr.SIZE, sexpr.const(-1))),
            _cond(sexpr.RANK, "==", sexpr.const(1), lhs_mod=2),
        )
    )
    got = system.project_sizes(8, 2)
    for s in range(MIN_SIZE, 30):
        assert (s in got) == (s % 2 == 0)


def test_implication_universal():
    # rank % 4 == 0  ⇒  rank % 2 == 0, at every size.
    system = System(
        (_cond(sexpr.RANK, "==", sexpr.const(0), lhs_mod=4),)
    )
    assert system.implies(
        _cond(sexpr.RANK, "==", sexpr.const(0), lhs_mod=2), 8, 4
    )
    assert not system.implies(
        _cond(sexpr.RANK, "==", sexpr.const(1), lhs_mod=2), 8, 4
    )


def test_suggest_bounds_covers_offsets_and_moduli():
    affines = (sexpr.add(sexpr.RANK, sexpr.const(3)),)
    threshold, period = suggest_bounds(affines, moduli=(2, 3))
    assert threshold >= MIN_SIZE + 2 * 3
    assert period == 6
    # Defaults: no offsets, no moduli.
    threshold, period = suggest_bounds(())
    assert threshold >= MIN_SIZE
    assert period == 1
