"""TBON substrate: topology, network FIFO guarantees, aggregation."""
import pytest

from repro.mpi.constants import OpKind
from repro.tbon import (
    Network,
    TbonTopology,
    WaveAggregator,
    WaveContribution,
    fixed_latency,
    jittered_latency,
)
from repro.util.errors import CollectiveMismatchError


class TestTopology:
    def test_layers_and_roles(self):
        topo = TbonTopology.build(8, fan_in=2)
        assert topo.layers[0] == tuple(range(8))
        assert len(topo.first_layer) == 4
        assert topo.root == topo.layers[-1][0]
        assert topo.num_tool_nodes == 4 + 2 + 1

    def test_every_rank_has_a_first_layer_host(self):
        topo = TbonTopology.build(10, fan_in=4)
        for rank in range(10):
            host = topo.host_of_rank(rank)
            assert host in topo.first_layer
            assert rank in topo.ranks_of_host(host)

    def test_dedicated_root_for_small_worlds(self):
        """Even p <= fan_in gets a root above the first layer."""
        topo = TbonTopology.build(3, fan_in=4)
        assert len(topo.first_layer) == 1
        assert topo.root != topo.first_layer[0]
        assert topo.children(topo.root) == (topo.first_layer[0],)

    def test_parents_and_paths(self):
        topo = TbonTopology.build(16, fan_in=2)
        for node in topo.first_layer:
            path = topo.path_to_root(node)
            assert path[0] == node and path[-1] == topo.root
            for a, b in zip(path, path[1:]):
                assert topo.parent(a) == b

    def test_ranks_under(self):
        topo = TbonTopology.build(8, fan_in=2)
        assert topo.ranks_under(topo.root) == tuple(range(8))
        mid = topo.layers[2][0]
        assert topo.ranks_under(mid) == (0, 1, 2, 3)
        assert topo.ranks_under(5) == (5,)

    def test_root_has_no_parent(self):
        topo = TbonTopology.build(4, fan_in=2)
        with pytest.raises(KeyError):
            topo.parent(topo.root)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TbonTopology.build(0, 2)
        with pytest.raises(ValueError):
            TbonTopology.build(4, 1)

    def test_layer_of(self):
        topo = TbonTopology.build(4, fan_in=2)
        assert topo.layer_of(0) == 0
        assert topo.layer_of(topo.first_layer[0]) == 1
        assert topo.layer_of(topo.root) == len(topo.layers) - 1


class _Recorder:
    def __init__(self, node_id):
        self.node_id = node_id
        self.received = []

    def handle(self, msg, net, src):
        self.received.append((src, msg))


class TestNetwork:
    def test_fifo_per_channel_under_jitter(self):
        net = Network(jittered_latency(seed=42, base=1e-6, jitter=1e-4))
        sink = _Recorder(0)
        net.attach(sink)
        for i in range(50):
            net.send(1, 0, i)
        net.run()
        assert [m for _, m in sink.received] == list(range(50))

    def test_cross_channel_interleaving_allowed(self):
        net = Network(jittered_latency(seed=1, base=1e-6, jitter=1e-3))
        sink = _Recorder(0)
        net.attach(sink)
        for i in range(10):
            net.send(1, 0, ("a", i))
            net.send(2, 0, ("b", i))
        net.run()
        per_channel = {"a": [], "b": []}
        for src, (ch, i) in sink.received:
            per_channel[ch].append(i)
        assert per_channel["a"] == list(range(10))
        assert per_channel["b"] == list(range(10))

    def test_send_to_unattached_node(self):
        net = Network()
        with pytest.raises(KeyError):
            net.send(0, 99, "x")

    def test_call_at_ordering(self):
        net = Network(fixed_latency(1e-6))
        fired = []
        net.call_at(5.0, lambda: fired.append("late"))
        net.call_at(1.0, lambda: fired.append("early"))
        net.run()
        assert fired == ["early", "late"]
        assert net.now == 5.0

    def test_cannot_schedule_in_past(self):
        net = Network()
        net.call_at(1.0, lambda: None)
        net.run()
        with pytest.raises(ValueError):
            net.call_at(0.5, lambda: None)

    def test_run_until_bound(self):
        net = Network(fixed_latency(1.0))
        sink = _Recorder(0)
        net.attach(sink)
        net.send(1, 0, "m")
        t = net.run(until=0.5)
        assert t == 0.5 and not sink.received
        net.run()
        assert sink.received

    def test_message_statistics(self):
        net = Network()
        net.attach(_Recorder(0))
        net.send(1, 0, "x", size=100)
        net.send(2, 0, "y", size=50)
        net.run()
        assert net.messages_sent == 2
        assert net.bytes_sent == 150

    def test_handlers_can_send(self):
        net = Network(fixed_latency(1e-6))
        sink = _Recorder(0)

        class Relay:
            node_id = 1

            def handle(self, msg, n, src):
                n.send(1, 0, msg + 1)

        net.attach(sink)
        net.attach(Relay())
        net.send(2, 1, 41)
        net.run()
        assert sink.received == [(1, 42)]


class TestWaveAggregator:
    def test_emits_exactly_once_at_threshold(self):
        agg = WaveAggregator()
        c = WaveContribution(count=1, kind=OpKind.BARRIER, root=None)
        assert agg.add("w", c, expected=3) is None
        assert agg.add("w", c, expected=3) is None
        out = agg.add("w", c, expected=3)
        assert out is not None and out.count == 3
        assert agg.pending_keys() == ()

    def test_partial_counts_aggregate(self):
        agg = WaveAggregator()
        out = agg.add(
            "w", WaveContribution(2, OpKind.ALLREDUCE, None), expected=5
        )
        assert out is None
        out = agg.add(
            "w", WaveContribution(3, OpKind.ALLREDUCE, None), expected=5
        )
        assert out.count == 5

    def test_kind_mismatch(self):
        agg = WaveAggregator()
        agg.add("w", WaveContribution(1, OpKind.BARRIER, None), expected=2)
        with pytest.raises(CollectiveMismatchError):
            agg.add("w", WaveContribution(1, OpKind.ALLREDUCE, None),
                    expected=2)

    def test_root_mismatch(self):
        agg = WaveAggregator()
        agg.add("w", WaveContribution(1, OpKind.REDUCE, 0), expected=2)
        with pytest.raises(CollectiveMismatchError):
            agg.add("w", WaveContribution(1, OpKind.REDUCE, 1), expected=2)

    def test_overcount_detected(self):
        agg = WaveAggregator()
        agg.add("w", WaveContribution(2, OpKind.BARRIER, None), expected=2)
        with pytest.raises(CollectiveMismatchError):
            agg.add("w", WaveContribution(1, OpKind.BARRIER, None),
                    expected=2)

    def test_independent_keys(self):
        agg = WaveAggregator()
        c = WaveContribution(1, OpKind.BARRIER, None)
        assert agg.add(("a", 0), c, expected=1) is not None
        assert agg.add(("a", 1), c, expected=2) is None
        assert set(agg.pending_keys()) == {("a", 1)}


class _NullNode:
    def __init__(self, node_id):
        self.node_id = node_id

    def handle(self, msg, net, src):
        pass


class TestBoundedRunClock:
    """Regression: ``run(until=T)`` must advance the clock to T even
    when the event heap drains early. It used to return the pre-drain
    clock, so back-to-back bounded runs saw time move backwards
    relative to the requested horizon."""

    def test_empty_heap_still_advances_to_until(self):
        net = Network(fixed_latency(0.25))
        assert net.run(until=5.0) == 5.0
        assert net.now == 5.0

    def test_drained_heap_advances_past_last_event(self):
        net = Network(fixed_latency(0.25))
        net.attach(_NullNode(0))
        net.send(1, 0, "hello", 8)
        assert net.run(until=2.0) == 2.0  # delivery was at t=0.25
        assert net.idle()
        # The advanced clock must be usable: scheduling relative to
        # `now` lands after the bound, never "in the past".
        fired = []
        net.call_later(0.5, lambda: fired.append(net.now))
        net.run()
        assert fired == [2.5]

    def test_monotonic_across_consecutive_bounded_runs(self):
        net = Network(fixed_latency(0.25))
        stamps = []
        for until in (1.0, 2.0, 3.0):
            stamps.append(net.run(until=until))
        assert stamps == [1.0, 2.0, 3.0]
