"""Unit tests for the analysis backends: factory, shard planning,
batched transport ordering, and the sharded backend's contract."""
import pytest

from repro.backend import (
    DEFAULT_SHARDS,
    InlineBackend,
    ShardedBackend,
    make_backend,
    plan_shards,
    shard_of_node,
)
from repro.backend.sharded import ShardNetwork
from repro.core.messages import Ping, Pong
from repro.mpi.blocking import BlockingSemantics
from repro.perf.placement import Placement
from repro.runtime import run_programs
from repro.tbon.topology import TbonTopology
from repro.util.errors import ProtocolError
from repro.workloads import fig2a_programs


class TestMakeBackend:
    def test_inline_by_name(self):
        backend = make_backend("inline")
        assert isinstance(backend, InlineBackend)
        assert backend.describe() == "inline"

    def test_sharded_by_name(self):
        backend = make_backend("sharded", shards=4)
        assert isinstance(backend, ShardedBackend)
        assert backend.shards == 4
        assert backend.describe() == "sharded(shards=4)"

    def test_default_shards(self):
        assert make_backend("sharded").shards == DEFAULT_SHARDS

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown analysis backend"):
            make_backend("turbo")

    def test_zero_shards_raises(self):
        with pytest.raises(ValueError):
            ShardedBackend(shards=0)


class TestPlanShards:
    def test_partition_covers_first_layer_contiguously(self):
        topology = TbonTopology.build(64, 4)
        plan = plan_shards(topology, 4)
        flat = [n for group in plan for n in group]
        assert flat == list(topology.first_layer)
        assert all(group for group in plan)

    def test_clamps_to_first_layer_size(self):
        topology = TbonTopology.build(8, 4)  # 2 first-layer nodes
        plan = plan_shards(topology, 8)
        assert len(plan) == 2

    def test_single_shard_owns_everything(self):
        topology = TbonTopology.build(64, 4)
        (group,) = plan_shards(topology, 1)
        assert group == topology.first_layer

    def test_deterministic(self):
        topology = TbonTopology.build(256, 4)
        assert plan_shards(topology, 4) == plan_shards(topology, 4)

    def test_invalid_shard_count_raises(self):
        topology = TbonTopology.build(16, 4)
        with pytest.raises(ValueError):
            plan_shards(topology, 0)

    def test_cuts_snap_to_placement_host_boundaries(self):
        # 64 ranks, fan-in 4 -> 16 first-layer nodes of 4 ranks each.
        # With 12 cores per host, the balanced midpoint cut (node 8,
        # first rank 32) is not a host boundary, but node 9 (rank 36 =
        # 3 * 12) is — within the snap window, so the planner takes it.
        topology = TbonTopology.build(64, 4)
        plan = plan_shards(topology, 2, Placement(cores_per_node=12))
        first_rank = topology.ranks_of_host(plan[1][0])[0]
        assert first_rank == 36

    def test_shard_of_node_inverts_plan(self):
        topology = TbonTopology.build(64, 4)
        plan = plan_shards(topology, 4)
        lookup = shard_of_node(plan)
        for shard, group in enumerate(plan):
            for node in group:
                assert lookup[node] == shard


class _Sink:
    """A handle-recording stand-in for a FirstLayerNode."""

    def __init__(self):
        self.seen = []

    def handle(self, msg, net, src):
        self.seen.append((src, msg))


class TestShardNetwork:
    def _net(self, local_ids, flush_limit=64):
        from repro.obs.observer import NULL_OBSERVER

        batches = []
        local = {nid: _Sink() for nid in local_ids}
        net = ShardNetwork(
            local, emit=batches.append, observer=NULL_OBSERVER,
            flush_limit=flush_limit,
        )
        return net, local, batches

    def test_local_sends_stay_local_and_fifo(self):
        net, local, batches = self._net([10, 11])
        net.send(1, 10, Ping(detection_id=1, remaining=0), 8)
        net.send(1, 10, Pong(detection_id=1, remaining=0), 8)
        net.pump()
        assert [type(m).__name__ for _, m in local[10].seen] == [
            "Ping", "Pong",
        ]
        assert not batches and net.messages_sent == 2

    def test_remote_sends_batch_in_send_order(self):
        net, _, batches = self._net([10])
        for seq in range(5):
            net.send(10, 99, Ping(detection_id=seq, remaining=0), 8)
        net.flush()
        (batch,) = batches
        assert len(batch) == 5
        # decode back and check the sequence survived intact
        from repro.mpi.serialize import decode_message

        seqs = [
            decode_message(wire).detection_id
            for _src, _dst, wire, _size in batch
        ]
        assert seqs == list(range(5))

    def test_outbox_flushes_at_limit(self):
        net, _, batches = self._net([10], flush_limit=3)
        for seq in range(7):
            net.send(10, 99, Ping(detection_id=seq, remaining=0), 8)
        assert [len(b) for b in batches] == [3, 3]
        net.flush()
        assert [len(b) for b in batches] == [3, 3, 1]
        assert net.flushes == 3

    def test_flush_order_preserves_per_channel_fifo(self):
        # Interleave two destination channels; after concatenating the
        # flushed batches, each channel's messages are still in order.
        net, _, batches = self._net([10], flush_limit=2)
        sends = [(99, 0), (98, 0), (99, 1), (98, 1), (99, 2)]
        for dst, seq in sends:
            net.send(10, dst, Ping(detection_id=seq, remaining=0), 8)
        net.flush()
        flat = [entry for batch in batches for entry in batch]
        for dst in (98, 99):
            from repro.mpi.serialize import decode_message

            seqs = [
                decode_message(wire).detection_id
                for _s, d, wire, _sz in flat
                if d == dst
            ]
            assert seqs == sorted(seqs)

    def test_deliver_rejects_foreign_node(self):
        net, _, _ = self._net([10])
        with pytest.raises(ProtocolError):
            net.deliver(1, 42, Ping(detection_id=0, remaining=0))

    def test_now_is_monotonic_across_deliveries(self):
        net, _, _ = self._net([10])
        net.send(1, 10, Ping(detection_id=0, remaining=0), 8)
        net.send(1, 10, Ping(detection_id=1, remaining=0), 8)
        before = net.now
        net.pump()
        assert net.now > before


class TestShardedBackendContract:
    def test_detect_at_is_rejected(self):
        res = run_programs(
            fig2a_programs(), semantics=BlockingSemantics.relaxed(), seed=0
        )
        with pytest.raises(ValueError, match="detect_at"):
            ShardedBackend(shards=2).run(res.matched, detect_at=(1.0,))

    def test_last_timing_reports_the_run(self):
        res = run_programs(
            fig2a_programs(), semantics=BlockingSemantics.relaxed(), seed=0
        )
        backend = ShardedBackend(shards=2)
        outcome = backend.run(res.matched)
        assert outcome.deadlocked == (0, 1)
        timing = backend.last_timing
        assert timing is not None
        assert timing["shards"] == 1  # fig2a: one first-layer node
        assert timing["rounds"] >= 1
        assert timing["modeled_latency_seconds"] >= max(
            timing["shard_busy_seconds"]
        )
