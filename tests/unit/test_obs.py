"""Unit tests for the observability subsystem (`repro.obs`)."""
import json

import pytest

from repro.obs import (
    NULL_OBSERVER,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    NullTracer,
    Observer,
    Tracer,
    TraceEvent,
    make_observer,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.events import PID_ENGINE, PID_TBON
from repro.obs.exporters import chrome_trace_document, load_run
from repro.obs.stats import render_summary
from repro.util.errors import TraceError


class TestTracer:
    def test_instant_and_complete_record_events(self):
        tracer = Tracer()
        tracer.instant("newOp", cat="engine.op", pid=PID_ENGINE, tid=3,
                       ts=12.5, args={"ts": 0})
        tracer.complete("sync", cat="detection", ts=100.0, dur=50.0,
                        pid=PID_TBON, tid=0)
        assert len(tracer.events) == 2
        inst, comp = tracer.events
        assert (inst.ph, inst.ts, inst.tid) == ("i", 12.5, 3)
        assert (comp.ph, comp.ts, comp.dur) == ("X", 100.0, 50.0)

    def test_wall_clock_default_timestamps_are_monotonic(self):
        tracer = Tracer()
        tracer.instant("a", cat="c", pid=1, tid=0)
        tracer.instant("b", cat="c", pid=1, tid=0)
        a, b = tracer.events
        assert 0.0 <= a.ts <= b.ts

    def test_span_measures_duration(self):
        tracer = Tracer()
        with tracer.span("work", cat="engine", pid=PID_ENGINE, tid=0):
            pass
        (event,) = tracer.events
        assert event.ph == "X" and event.dur >= 0.0

    def test_negative_durations_clamped(self):
        tracer = Tracer()
        tracer.complete("x", cat="c", ts=5.0, dur=-1.0, pid=1, tid=0)
        assert tracer.events[0].dur == 0.0

    def test_event_limit_drops_and_counts(self):
        tracer = Tracer(limit=3)
        for i in range(5):
            tracer.instant(f"e{i}", cat="c", pid=1, tid=0, ts=float(i))
        # The limit keeps 3 events plus one final 'truncated' marker.
        assert len(tracer.events) == 4
        assert [e.name for e in tracer.events[:3]] == ["e0", "e1", "e2"]
        marker = tracer.events[-1]
        assert marker.name == "truncated" and marker.cat == "tracer"
        assert marker.args == {"limit": 3}
        assert tracer.dropped == 2

    def test_event_limit_increments_bound_metrics(self):
        from repro.obs.metrics import MetricsRegistry

        tracer = Tracer(limit=2)
        metrics = MetricsRegistry()
        tracer.bind_metrics(metrics)
        for i in range(5):
            tracer.instant(f"e{i}", cat="c", pid=1, tid=0, ts=float(i))
        counters = metrics.snapshot()["counters"]
        assert counters["obs.tracer.dropped"] == 3
        # Only one truncation marker, no matter how many drops follow.
        assert [e.name for e in tracer.events].count("truncated") == 1

    def test_counter_events(self):
        tracer = Tracer()
        tracer.counter("queue", ts=1.0, pid=PID_TBON, values={"depth": 4})
        (event,) = tracer.events
        assert event.ph == "C" and event.args == {"depth": 4}


class TestNullBackend:
    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        tracer.instant("a", cat="c", pid=1, tid=0)
        tracer.complete("b", cat="c", ts=0.0, dur=1.0, pid=1, tid=0)
        tracer.counter("c", ts=0.0, pid=1, values={"v": 1})
        with tracer.span("d", cat="c", pid=1, tid=0):
            pass
        assert tracer.events == []
        assert not tracer.enabled

    def test_null_registry_snapshot_is_empty(self):
        registry = NullMetricsRegistry()
        registry.inc("a")
        registry.set_gauge("b", 3.0)
        registry.observe("c", 1.0)
        registry.counter("a").inc(5)
        snap = registry.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_null_observer_disabled(self):
        assert not NULL_OBSERVER.enabled
        assert not NULL_OBSERVER.tracer.enabled
        assert make_observer(False) is NULL_OBSERVER

    def test_make_observer_live(self):
        obs = make_observer()
        assert obs.enabled and isinstance(obs, Observer)
        obs.metrics.inc("x")
        assert obs.metrics.snapshot()["counters"] == {"x": 1}


class TestHistogram:
    def test_percentile_exact_on_known_data(self):
        h = Histogram()
        for v in [15, 20, 35, 40, 50]:
            h.observe(v)
        # Linear-interpolation ("inclusive") percentile definition.
        assert h.percentile(0) == 15
        assert h.percentile(100) == 50
        assert h.percentile(50) == 35
        assert h.percentile(25) == 20
        assert h.percentile(75) == 40
        # Interpolated point: rank (5-1)*0.40 = 1.6 -> 20 + 0.6*15.
        assert h.percentile(40) == pytest.approx(29.0)

    def test_percentile_single_value(self):
        h = Histogram()
        h.observe(7.0)
        for p in (0, 50, 99, 100):
            assert h.percentile(p) == 7.0

    def test_percentile_unsorted_input(self):
        h = Histogram()
        for v in [9, 1, 5, 3, 7]:
            h.observe(v)
        assert h.percentile(50) == 5

    def test_empty_histogram_raises(self):
        with pytest.raises(ValueError):
            Histogram().percentile(50)

    def test_out_of_range_percentile_raises(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_summary_fields(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == 100
        assert s["min"] == 1.0 and s["max"] == 100.0
        assert s["mean"] == pytest.approx(50.5)
        assert s["p50"] == pytest.approx(50.5)
        assert s["p99"] == pytest.approx(99.01)

    def test_empty_summary(self):
        assert Histogram().summary() == {"count": 0, "sum": 0.0}

    def test_sorted_cache_survives_in_order_appends(self):
        # A query materializes the sorted cache; later in-order
        # observes must extend it rather than stale-serve old data.
        h = Histogram()
        for v in [1.0, 5.0, 3.0]:
            h.observe(v)
        assert h.percentile(100) == 5.0
        h.observe(7.0)  # >= cache max: appended in place
        h.observe(7.0)  # equal to cache max: still in order
        assert h.percentile(100) == 7.0
        assert h.summary()["max"] == 7.0

    def test_sorted_cache_invalidated_by_out_of_order_observe(self):
        h = Histogram()
        for v in [10.0, 20.0]:
            h.observe(v)
        assert h.percentile(50) == 15.0
        h.observe(1.0)  # < cache max: cache must be rebuilt
        assert h.percentile(0) == 1.0
        assert h.percentile(50) == 10.0

    def test_dump_preserves_insertion_order_after_queries(self):
        # dump_state ships raw observations in insertion order; the
        # percentile cache must never reorder the backing list.
        h = Histogram()
        values = [4.0, 1.0, 3.0, 2.0]
        for v in values:
            h.observe(v)
        h.percentile(50)
        h.observe(0.5)
        h.percentile(50)
        reg = MetricsRegistry()
        reg._histograms["h"] = h
        assert reg.dump_state()["histograms"]["h"] == values + [0.5]


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("msgs", 3)
        reg.inc("msgs")
        reg.set_gauge("depth", 5.0)
        reg.set_gauge("depth", 2.0)
        reg.observe("lat", 1.0)
        reg.observe("lat", 3.0)
        snap = reg.snapshot()
        assert snap["counters"]["msgs"] == 4
        assert snap["gauges"]["depth"] == {"value": 2.0, "max": 5.0}
        assert snap["histograms"]["lat"]["count"] == 2

    def test_counters_with_prefix(self):
        reg = MetricsRegistry()
        reg.inc("tbon.sent.PassSend", 7)
        reg.inc("tbon.sent.RecvActive", 2)
        reg.inc("other", 1)
        assert reg.counters_with_prefix("tbon.sent.") == {
            "PassSend": 7, "RecvActive": 2,
        }

    def test_merge_phase_breakdown(self):
        reg = MetricsRegistry()
        reg.merge_phase_breakdown({"synchronization": 0.5, "wfg_gather": 0.25})
        snap = reg.snapshot()["histograms"]
        assert snap["detection.phase.synchronization"]["sum"] == 0.5
        assert snap["detection.phase.wfg_gather"]["sum"] == 0.25

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.observe("b", 2.0)
        json.dumps(reg.snapshot())

    def test_merge_state_round_trip(self):
        src = MetricsRegistry()
        src.inc("msgs", 3)
        src.set_gauge("depth", 4.0)
        src.observe("lat", 1.0)
        dst = MetricsRegistry()
        dst.inc("msgs", 2)
        dst.merge_state(src.dump_state())
        snap = dst.snapshot()
        assert snap["counters"]["msgs"] == 5
        assert snap["gauges"]["depth"]["max"] == 4.0
        assert snap["histograms"]["lat"]["count"] == 1

    def test_merge_state_empty_and_partial(self):
        reg = MetricsRegistry()
        reg.inc("msgs")
        reg.merge_state({})
        reg.merge_state({"counters": {}})
        assert reg.snapshot()["counters"]["msgs"] == 1

    def test_merge_state_ignores_unknown_kinds(self):
        # A newer worker may ship instrument kinds this coordinator
        # doesn't know; they must be skipped, not crash the join.
        reg = MetricsRegistry()
        reg.merge_state(
            {"counters": {"a": 1}, "summaries": {"x": [1, 2, 3]}}
        )
        snap = reg.snapshot()
        assert snap["counters"]["a"] == 1
        assert "summaries" not in snap

    def test_merge_state_counter_gauge_name_collision(self):
        # The same dotted name can be a counter locally and a gauge in
        # a shard's dump: the kinds live in separate namespaces and
        # must merge independently.
        reg = MetricsRegistry()
        reg.inc("backend.shard0.busy", 2)
        reg.merge_state(
            {
                "counters": {"backend.shard0.busy": 3},
                "gauges": {"backend.shard0.busy": (1.5, 2.5)},
            }
        )
        snap = reg.snapshot()
        assert snap["counters"]["backend.shard0.busy"] == 5
        assert snap["gauges"]["backend.shard0.busy"] == {
            "value": 1.5, "max": 2.5,
        }

    def test_merge_state_gauge_high_water(self):
        reg = MetricsRegistry()
        reg.set_gauge("depth", 9.0)
        reg.merge_state({"gauges": {"depth": (3.0, 5.0)}})
        gauge = reg.snapshot()["gauges"]["depth"]
        # Value keeps the later write; high-water takes the max.
        assert gauge == {"value": 3.0, "max": 9.0}


class TestExporters:
    def _tracer(self):
        tracer = Tracer()
        tracer.instant("newOp", cat="engine.op", pid=PID_ENGINE, tid=1,
                       ts=1.0, args={"ts": 4})
        tracer.complete("sync", cat="detection", ts=2.0, dur=3.0,
                        pid=PID_TBON, tid=0)
        return tracer

    def test_jsonl_round_trip(self, tmp_path):
        tracer = self._tracer()
        path = tmp_path / "events.jsonl"
        write_jsonl(str(path), tracer)
        events = read_jsonl(str(path))
        assert events == tracer.events

    def test_jsonl_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "a", "ts": 1}\nnot json\n')
        with pytest.raises(TraceError):
            read_jsonl(str(path))

    def test_chrome_trace_loads_with_json_load(self, tmp_path):
        path = tmp_path / "run.trace.json"
        write_chrome_trace(
            str(path), self._tracer(),
            metadata={"workload": "t", "deadlocked": False, "metrics": {}},
        )
        with open(path) as handle:
            doc = json.load(handle)
        assert isinstance(doc["traceEvents"], list)
        for event in doc["traceEvents"]:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
        # The engine, TBON, wait-state, and shard-coordinator rows are
        # named via metadata records.
        names = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(names) == 4

    def test_chrome_document_embeds_run_metadata(self):
        doc = chrome_trace_document(
            self._tracer(), metadata={"workload": "x", "metrics": {"a": 1}}
        )
        assert doc["repro"]["workload"] == "x"
        assert doc["repro"]["version"] == 1
        assert doc["repro"]["dropped_events"] == 0

    def test_load_run_validates(self, tmp_path):
        good = tmp_path / "good.json"
        write_chrome_trace(
            str(good), self._tracer(), metadata={"metrics": {}}
        )
        assert "traceEvents" in load_run(str(good))
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(TraceError):
            load_run(str(bad))
        notjson = tmp_path / "notjson.json"
        notjson.write_text("{{{{")
        with pytest.raises(TraceError):
            load_run(str(notjson))
        no_meta = tmp_path / "nometa.json"
        no_meta.write_text('{"traceEvents": []}')
        with pytest.raises(TraceError):
            load_run(str(no_meta))

    def test_trace_event_round_trip(self):
        event = TraceEvent(name="n", cat="c", ph="X", ts=1.5, pid=2,
                           tid=3, dur=0.5, args={"k": "v"})
        assert TraceEvent.from_json(event.to_json()) == event


class TestStatsRendering:
    def test_summary_tables(self):
        reg = MetricsRegistry()
        reg.inc("tbon.sent.PassSend", 12)
        reg.inc("tbon.sent_bytes.PassSend", 576)
        reg.inc("tbon.recv.PassSend", 12)
        reg.merge_phase_breakdown({"synchronization": 0.5})
        text = "\n".join(render_summary(reg.snapshot()))
        assert "PassSend" in text
        assert "576" in text
        for phase in (
            "synchronization", "wfg_gather", "graph_build",
            "deadlock_check", "output_generation",
        ):
            assert phase in text

    def test_summary_empty_snapshot(self):
        text = "\n".join(render_summary(MetricsRegistry().snapshot()))
        assert "no tool messages recorded" in text


def test_phase_constant_fixed_and_alias_removed():
    from repro.perf import timers

    assert timers.PHASE_SYNCHRONIZATION == "synchronization"
    # The misspelled compatibility alias is gone.
    assert not hasattr(timers, "PHASE_SYNchronization")
    assert timers.ALL_PHASES[0] == timers.PHASE_SYNCHRONIZATION
