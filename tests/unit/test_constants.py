"""Operation-kind classification (the vocabulary of the analyses)."""
import pytest

from repro.mpi.constants import (
    OpKind,
    completion_needs_all,
    is_collective_kind,
    is_completion_kind,
    is_nonblocking_p2p_kind,
    is_p2p_kind,
    is_probe_kind,
    is_recv_kind,
    is_rooted_collective_kind,
    is_send_kind,
    is_test_kind,
    is_wait_kind,
)


def test_send_kinds_cover_all_flavours():
    for kind in (
        OpKind.SEND,
        OpKind.SSEND,
        OpKind.BSEND,
        OpKind.RSEND,
        OpKind.ISEND,
        OpKind.ISSEND,
        OpKind.IBSEND,
        OpKind.IRSEND,
    ):
        assert is_send_kind(kind)
        assert is_p2p_kind(kind)
        assert not is_recv_kind(kind)
        assert not is_collective_kind(kind)


def test_recv_and_probe_kinds():
    assert is_recv_kind(OpKind.RECV)
    assert is_recv_kind(OpKind.IRECV)
    assert not is_recv_kind(OpKind.PROBE)
    assert is_probe_kind(OpKind.PROBE)
    assert is_probe_kind(OpKind.IPROBE)
    assert is_p2p_kind(OpKind.PROBE)


def test_nonblocking_p2p_kinds_create_requests():
    for kind in (
        OpKind.ISEND,
        OpKind.ISSEND,
        OpKind.IBSEND,
        OpKind.IRSEND,
        OpKind.IRECV,
    ):
        assert is_nonblocking_p2p_kind(kind)
    assert not is_nonblocking_p2p_kind(OpKind.IPROBE)
    assert not is_nonblocking_p2p_kind(OpKind.SEND)


def test_collective_kinds_include_comm_management():
    """Section 3.1: Comm_dup etc. are matched as collectives."""
    for kind in (
        OpKind.BARRIER,
        OpKind.ALLREDUCE,
        OpKind.COMM_DUP,
        OpKind.COMM_SPLIT,
        OpKind.COMM_FREE,
        OpKind.SCAN,
        OpKind.REDUCE_SCATTER,
    ):
        assert is_collective_kind(kind)
    assert not is_collective_kind(OpKind.FINALIZE)


def test_rooted_collectives():
    assert is_rooted_collective_kind(OpKind.BCAST)
    assert is_rooted_collective_kind(OpKind.REDUCE)
    assert not is_rooted_collective_kind(OpKind.ALLREDUCE)
    assert not is_rooted_collective_kind(OpKind.BARRIER)


def test_completion_kind_partition():
    for kind in (OpKind.WAIT, OpKind.WAITANY, OpKind.WAITSOME, OpKind.WAITALL):
        assert is_wait_kind(kind)
        assert is_completion_kind(kind)
        assert not is_test_kind(kind)
    for kind in (OpKind.TEST, OpKind.TESTANY, OpKind.TESTSOME, OpKind.TESTALL):
        assert is_test_kind(kind)
        assert is_completion_kind(kind)
        assert not is_wait_kind(kind)


def test_completion_needs_all_matches_rule4():
    """Rule 4(II) covers Wait/Waitall; rule 4(I) Waitany/Waitsome."""
    assert completion_needs_all(OpKind.WAIT)
    assert completion_needs_all(OpKind.WAITALL)
    assert not completion_needs_all(OpKind.WAITANY)
    assert not completion_needs_all(OpKind.WAITSOME)
    assert completion_needs_all(OpKind.TEST)
    assert not completion_needs_all(OpKind.TESTANY)


def test_completion_needs_all_rejects_non_completions():
    with pytest.raises(ValueError):
        completion_needs_all(OpKind.SEND)
