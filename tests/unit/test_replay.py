"""Timed trace replay: the executable validation of the Figure 9 model."""
import pytest

from repro.perf import (
    stress_centralized_slowdown,
    stress_distributed_slowdown,
)
from repro.perf.replay import (
    replay_reference,
    replay_slowdown,
    replay_with_tool,
)
from repro.util.errors import TraceError
from repro.workloads import build_stress_trace, build_wildcard_trace


@pytest.fixture(scope="module")
def stress16():
    return build_stress_trace(16, iterations=30)


def test_reference_replay_monotone_and_positive(stress16):
    result = replay_reference(stress16)
    assert result.makespan > 0
    assert len(result.per_rank_finish) == 16
    # Barriers synchronize everyone: finishes cluster near the makespan.
    assert min(result.per_rank_finish) > 0.5 * result.makespan


def test_tool_replay_slower_than_reference(stress16):
    ref = replay_reference(stress16)
    tool = replay_with_tool(stress16, fan_in=2)
    assert tool.makespan > ref.makespan


def test_fanin_ordering_matches_model(stress16):
    s2 = replay_slowdown(stress16, fan_in=2)
    s4 = replay_slowdown(stress16, fan_in=4)
    s8 = replay_slowdown(stress16, fan_in=8)
    assert s2 < s4 < s8


def test_centralized_grows_with_scale():
    values = [
        replay_slowdown(build_stress_trace(p, iterations=20), fan_in=2,
                        centralized=True)
        for p in (16, 32, 64)
    ]
    assert values[0] < values[1] < values[2]


def test_distributed_flat_with_scale():
    values = [
        replay_slowdown(build_stress_trace(p, iterations=20), fan_in=2)
        for p in (16, 32, 64)
    ]
    assert values[0] >= values[1] >= values[2]


def test_replay_agrees_with_model_within_factor_two(stress16):
    replay = replay_slowdown(stress16, fan_in=2)
    model = stress_distributed_slowdown(16, 2)
    assert 0.5 <= replay / model <= 2.0
    replay_c = replay_slowdown(
        build_stress_trace(64, iterations=20), fan_in=2, centralized=True
    )
    model_c = stress_centralized_slowdown(64)
    assert 0.5 <= replay_c / model_c <= 2.0


def test_deadlocked_trace_rejected():
    with pytest.raises(TraceError):
        replay_reference(build_wildcard_trace(4))
