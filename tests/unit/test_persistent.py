"""Persistent communication (Section 3.1: "handled like non-blocking
point-to-point operations")."""
import pytest

from repro.core import (
    TransitionSystem,
    analyze_trace,
    detect_deadlocks_distributed,
)
from repro.mpi.constants import ANY_SOURCE, OpKind
from repro.util.errors import MpiUsageError

from tests.conftest import run_relaxed, run_strict


def _persistent_ring(iterations=4):
    def ring(r):
        right = (r.rank + 1) % r.size
        left = (r.rank - 1) % r.size
        sreq = yield r.send_init(right, tag=1)
        rreq = yield r.recv_init(left, tag=1)
        for _ in range(iterations):
            yield from r.startall([sreq, rreq])
            yield r.waitall([sreq, rreq])
        yield r.request_free(sreq)
        yield r.request_free(rreq)
        yield r.finalize()

    return ring


class TestRuntimeSemantics:
    def test_ring_completes_under_strict_semantics(self):
        res = run_strict([_persistent_ring()] * 5, seed=2)
        assert not res.deadlocked

    def test_each_start_is_a_fresh_instance(self):
        res = run_strict([_persistent_ring(3)] * 3, seed=1)
        starts = [
            op for op in res.trace.sequence(0)
            if op.kind in (OpKind.PSTART_SEND, OpKind.PSTART_RECV)
        ]
        assert len(starts) == 6  # 3 iterations x (send + recv)
        assert len({op.request for op in starts}) == 6  # all distinct
        # Every send instance matched its own receive instance.
        send_matches = [
            res.matched.match_of(op.ref)
            for op in starts
            if op.kind is OpKind.PSTART_SEND
        ]
        assert all(m is not None for m in send_matches)

    def test_start_on_active_request_is_usage_error(self):
        def bad(r):
            req = yield r.send_init(1)
            yield r.start(req)
            yield r.start(req)  # not completed yet
            yield r.finalize()

        def peer(r):
            yield r.recv(source=0)
            yield r.finalize()

        with pytest.raises(MpiUsageError):
            run_relaxed([bad, peer])

    def test_free_active_request_is_usage_error(self):
        def bad(r):
            req = yield r.send_init(1)
            yield r.start(req)
            yield r.request_free(req)
            yield r.finalize()

        def peer(r):
            yield r.recv(source=0)
            yield r.finalize()

        with pytest.raises(MpiUsageError):
            run_relaxed([bad, peer])

    def test_wait_on_inactive_persistent_is_usage_error(self):
        def bad(r):
            req = yield r.recv_init(1)
            yield r.wait(req)
            yield r.finalize()

        def peer(r):
            yield r.finalize()

        with pytest.raises(MpiUsageError):
            run_relaxed([bad, peer])

    def test_wildcard_persistent_receive(self):
        def master(r):
            req = yield r.recv_init(ANY_SOURCE, tag=3)
            for _ in range(2):
                yield r.start(req)
                status = yield r.wait(req)
                assert status.source in (1, 2)
            yield r.finalize()

        def worker(r):
            yield r.send(dest=0, tag=3)
            yield r.finalize()

        res = run_relaxed([master, worker, worker], seed=4)
        assert not res.deadlocked
        starts = [
            op for op in res.trace.sequence(0)
            if op.kind is OpKind.PSTART_RECV
        ]
        assert {op.observed_peer for op in starts} == {1, 2}


class TestAnalyses:
    def test_clean_ring_everywhere(self):
        res = run_strict([_persistent_ring()] * 5, seed=2)
        assert not analyze_trace(res.matched, generate_outputs=False).has_deadlock
        out = detect_deadlocks_distributed(res.matched, fan_in=2)
        assert not out.has_deadlock
        assert out.stable_state == TransitionSystem(res.matched).run()

    def test_unmatched_persistent_start_deadlocks(self):
        def victim(r):
            req = yield r.recv_init(1, tag=5)
            yield r.start(req)
            yield r.wait(req)
            yield r.finalize()

        def silent(r):
            yield r.finalize()

        res = run_relaxed([victim, silent], seed=0)
        assert res.deadlocked
        analysis = analyze_trace(res.matched, generate_outputs=False)
        assert analysis.deadlocked == (0,)
        out = detect_deadlocks_distributed(res.matched, fan_in=2)
        assert out.deadlocked == (0,)
        # The Wait is the blocked op; the Start is its rule-4 target.
        cond = analysis.conditions[0]
        assert cond.op_description.startswith("MPI_Wait")
        assert cond.target_ranks() == {1}

    def test_persistent_start_blocking_semantics(self, strict):
        """b(Start) = False: the paper's non-blocking treatment."""
        from repro.mpi.blocking import is_blocking
        from repro.mpi.ops import Operation

        for kind in (OpKind.PSTART_SEND, OpKind.PSTART_RECV):
            op = Operation(kind=kind, rank=0, ts=0, peer=1, request=0)
            assert not is_blocking(op, strict)
        for kind in (OpKind.SEND_INIT, OpKind.RECV_INIT):
            op = Operation(kind=kind, rank=0, ts=0, peer=1)
            assert not is_blocking(op, strict)
