"""Static extraction, typestate checks, and sequential matching."""
import pytest

from repro.analysis import (
    check_collective_consistency,
    check_request_typestate,
    extract_programs,
    match_sequences,
)
from repro.checks.findings import Severity
from repro.mpi.constants import ANY_SOURCE, OpKind, WORLD_COMM_ID


def _checks(findings):
    return {f.check for f in findings}


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------

def _ring(rank):
    right = (rank.rank + 1) % rank.size
    left = (rank.rank - 1) % rank.size
    sreq = yield rank.isend(right, tag=1, nbytes=64)
    yield rank.recv(source=left, tag=1)
    yield rank.wait(sreq)
    yield rank.barrier()
    yield rank.finalize()


class TestExtraction:
    def test_straight_line_ring_is_exact(self):
        ext = extract_programs([_ring] * 3)
        assert ext.exact
        assert not ext.truncated
        assert ext.num_processes == 3
        kinds = [op.kind for op in ext.sequences[0]]
        assert kinds == [
            OpKind.ISEND, OpKind.RECV, OpKind.WAIT, OpKind.BARRIER,
            OpKind.FINALIZE,
        ]
        # Refs are filed exactly like the engine would record them.
        for rank, seq in enumerate(ext.sequences):
            assert [op.ref for op in seq] == [
                (rank, ts) for ts in range(len(seq))
            ]

    def test_locations_point_into_this_file(self):
        ext = extract_programs([_ring] * 2)
        assert "test_analysis.py" in ext.sequences[0][0].location

    def test_wildcard_receive_is_inexact(self):
        def prog(rank):
            if rank.rank == 0:
                yield rank.send(1, tag=0)
            else:
                yield rank.recv(source=ANY_SOURCE, tag=0)
            yield rank.finalize()

        ext = extract_programs([prog] * 2)
        assert not ext.exact

    def test_iprobe_result_is_inexact(self):
        def prog(rank):
            yield rank.iprobe(source=1 - rank.rank, tag=0)
            yield rank.finalize()

        ext = extract_programs([prog] * 2)
        assert not ext.exact

    def test_runaway_program_is_truncated(self):
        def prog(rank):
            while True:
                yield rank.allreduce()

        ext = extract_programs([prog] * 2, max_ops_per_rank=16)
        assert ext.truncated == {0, 1}
        assert not ext.exact
        assert len(ext.sequences[0]) == 16

    def test_invalid_call_truncates_that_rank(self):
        def bad(rank):
            yield rank.waitall([])
            yield rank.finalize()

        def good(rank):
            yield rank.finalize()

        ext = extract_programs([bad, good])
        assert 0 in ext.truncated
        assert 1 not in ext.truncated

    def test_comm_split_produces_subcommunicators(self):
        def prog(rank):
            sub = yield rank.comm_split(color=rank.rank % 2)
            yield rank.barrier(comm=sub)
            yield rank.finalize()

        ext = extract_programs([prog] * 4)
        assert ext.exact
        sub_ids = {
            seq[1].comm_id for seq in ext.sequences
        }
        assert len(sub_ids) == 2
        assert WORLD_COMM_ID not in sub_ids
        for comm_id in sub_ids:
            assert len(ext.comms.get(comm_id).group) == 2

    def test_persistent_requests_extract_like_the_engine(self):
        def prog(rank):
            peer = 1 - rank.rank
            sreq = yield rank.send_init(peer, tag=2)
            rreq = yield rank.recv_init(peer, tag=2)
            yield from rank.startall([sreq, rreq])
            yield rank.waitall([sreq, rreq])
            yield rank.request_free(sreq)
            yield rank.request_free(rreq)
            yield rank.finalize()

        ext = extract_programs([prog] * 2)
        assert ext.exact
        assert not check_request_typestate(ext.sequences)


# ----------------------------------------------------------------------
# Request typestate
# ----------------------------------------------------------------------

class TestRequestTypestate:
    def _sequences(self, *programs):
        return extract_programs(list(programs)).sequences

    def test_double_wait(self):
        def waiter(rank):
            req = yield rank.isend(1, tag=0)
            yield rank.wait(req)
            yield rank.wait(req)
            yield rank.finalize()

        def receiver(rank):
            yield rank.recv(source=0, tag=0)
            yield rank.finalize()

        findings = check_request_typestate(
            self._sequences(waiter, receiver)
        )
        assert "static-double-wait" in _checks(findings)
        (bad,) = [f for f in findings if f.check == "static-double-wait"]
        assert bad.severity is Severity.ERROR
        assert bad.rank == 0

    def test_unknown_request(self):
        def prog(rank):
            yield rank.wait(42)
            yield rank.finalize()

        findings = check_request_typestate(self._sequences(prog, prog))
        assert "static-unknown-request" in _checks(findings)

    def test_request_leak_at_finalize(self):
        def leaker(rank):
            yield rank.irecv(source=1, tag=0)
            yield rank.finalize()

        def sender(rank):
            yield rank.send(0, tag=0)
            yield rank.finalize()

        findings = check_request_typestate(
            self._sequences(leaker, sender)
        )
        leaks = [f for f in findings if f.check == "static-request-leak"]
        assert leaks and leaks[0].severity is Severity.WARNING
        assert leaks[0].rank == 0

    def test_free_with_activation_in_flight(self):
        def prog(rank):
            req = yield rank.send_init(1 - rank.rank, tag=0)
            yield rank.start(req)
            yield rank.request_free(req)
            yield rank.finalize()

        findings = check_request_typestate(self._sequences(prog, prog))
        assert "static-free-active" in _checks(findings)

    def test_start_on_still_active_handle(self):
        def prog(rank):
            req = yield rank.send_init(1 - rank.rank, tag=0)
            yield rank.start(req)
            yield rank.start(req)
            yield rank.wait(req)
            yield rank.request_free(req)
            yield rank.finalize()

        findings = check_request_typestate(self._sequences(prog, prog))
        assert "static-start-active" in _checks(findings)

    def test_waitany_leaves_requests_uncertain(self):
        # Waitany completes exactly one of the two: the other is MAYBE
        # complete, so neither double-wait nor leak may be reported.
        def prog(rank):
            peer = 1 - rank.rank
            a = yield rank.isend(peer, tag=0)
            b = yield rank.irecv(source=peer, tag=0)
            yield rank.waitany([a, b])
            yield rank.waitany([a, b])
            yield rank.finalize()

        findings = check_request_typestate(self._sequences(prog, prog))
        assert not findings


# ----------------------------------------------------------------------
# Collective consistency
# ----------------------------------------------------------------------

class TestCollectiveConsistency:
    def _run(self, *programs, hung_ranks=None):
        ext = extract_programs(list(programs))
        return check_collective_consistency(
            ext.sequences, ext.comms, hung_ranks=hung_ranks
        )

    def test_kind_mismatch(self):
        def a(rank):
            yield rank.barrier()
            yield rank.finalize()

        def b(rank):
            yield rank.allreduce()
            yield rank.finalize()

        findings = self._run(a, b)
        (bad,) = [
            f for f in findings if f.check == "static-collective-mismatch"
        ]
        # Rank 0's barrier is the tie-broken majority; rank 1 deviates.
        assert bad.rank == 1
        assert "MPI_Allreduce" in bad.message
        assert "MPI_Barrier" in bad.message

    def test_root_mismatch(self):
        def prog(rank):
            yield rank.bcast(root=0 if rank.rank == 0 else 1)
            yield rank.finalize()

        findings = self._run(prog, prog)
        (bad,) = [
            f for f in findings if f.check == "static-root-mismatch"
        ]
        assert bad.rank == 1

    def test_missing_collective_on_finished_rank(self):
        def caller(rank):
            yield rank.barrier()
            yield rank.finalize()

        def skipper(rank):
            yield rank.finalize()

        findings = self._run(caller, skipper)
        (bad,) = [
            f for f in findings if f.check == "static-collective-missing"
        ]
        assert bad.rank == 1 and bad.severity is Severity.ERROR

    def test_hung_rank_is_not_reported_missing(self):
        def caller(rank):
            yield rank.barrier()
            yield rank.finalize()

        def skipper(rank):
            yield rank.finalize()

        findings = self._run(caller, skipper, hung_ranks={1})
        assert "static-collective-missing" not in _checks(findings)

    def test_consistent_collectives_are_clean(self):
        def prog(rank):
            yield rank.bcast(root=2)
            yield rank.allreduce()
            yield rank.barrier()
            yield rank.finalize()

        assert not self._run(prog, prog, prog)


# ----------------------------------------------------------------------
# Sequential matching
# ----------------------------------------------------------------------

class TestSequentialMatching:
    def _match(self, *programs):
        ext = extract_programs(list(programs))
        assert ext.exact
        return match_sequences(ext.sequences, ext.comms)

    def test_head_to_head_sends_deadlock(self):
        def prog(rank):
            peer = 1 - rank.rank
            yield rank.send(peer, tag=0)
            yield rank.recv(source=peer, tag=0)
            yield rank.finalize()

        result = self._match(prog, prog)
        assert result.applicable and result.has_deadlock
        assert set(result.deadlocked) == {0, 1}
        assert set(result.witness_cycle) == {0, 1}
        assert result.blocked_ops[0].kind is OpKind.SEND

    def test_ordered_exchange_is_clean(self):
        def first(rank):
            yield rank.send(1, tag=0)
            yield rank.recv(source=1, tag=0)
            yield rank.finalize()

        def second(rank):
            yield rank.recv(source=0, tag=0)
            yield rank.send(0, tag=0)
            yield rank.finalize()

        result = self._match(first, second)
        assert result.applicable and not result.has_deadlock
        assert result.finished == {0, 1}

    def test_buffered_sends_break_the_cycle(self):
        def prog(rank):
            peer = 1 - rank.rank
            yield rank.bsend(peer, tag=0)
            yield rank.recv(source=peer, tag=0)
            yield rank.finalize()

        result = self._match(prog, prog)
        assert not result.has_deadlock

    def test_recv_from_finished_rank_deadlocks(self):
        def waiter(rank):
            yield rank.recv(source=1, tag=5)
            yield rank.finalize()

        def quitter(rank):
            yield rank.finalize()

        result = self._match(waiter, quitter)
        assert result.deadlocked == (0,)
        assert result.finished == {1}

    def test_fifo_channels_respect_tags(self):
        # Messages on one channel are matched earliest-compatible: with
        # both sends posted, the tag-2 receive skips over the tag-1
        # message and nothing hangs.
        def sender(rank):
            a = yield rank.isend(1, tag=1)
            b = yield rank.isend(1, tag=2)
            yield rank.waitall([a, b])
            yield rank.finalize()

        def receiver(rank):
            yield rank.recv(source=0, tag=2)
            yield rank.recv(source=0, tag=1)
            yield rank.finalize()

        result = self._match(sender, receiver)
        assert not result.has_deadlock

    def test_blocking_tag_reorder_deadlocks_under_rendezvous(self):
        # The same exchange with blocking standard sends deadlocks: the
        # rendezvous tag-1 send cannot complete before the tag-2
        # receive is satisfied, and vice versa.
        def sender(rank):
            yield rank.send(1, tag=1)
            yield rank.send(1, tag=2)
            yield rank.finalize()

        def receiver(rank):
            yield rank.recv(source=0, tag=2)
            yield rank.recv(source=0, tag=1)
            yield rank.finalize()

        result = self._match(sender, receiver)
        assert set(result.deadlocked) == {0, 1}

    def test_waitall_cycle_detected(self):
        def prog(rank):
            peer = 1 - rank.rank
            req = yield rank.irecv(source=peer, tag=0)
            yield rank.wait(req)
            yield rank.send(peer, tag=0)
            yield rank.finalize()

        result = self._match(prog, prog)
        assert set(result.deadlocked) == {0, 1}
        assert result.blocked_ops[0].kind is OpKind.WAIT

    def test_collective_vs_p2p_cross_wait(self):
        def top(rank):
            yield rank.barrier()
            yield rank.send(1, tag=0)
            yield rank.finalize()

        def bottom(rank):
            yield rank.recv(source=0, tag=0)
            yield rank.barrier()
            yield rank.finalize()

        result = self._match(top, bottom)
        assert set(result.deadlocked) == {0, 1}

    def test_unresolved_wildcard_is_not_applicable(self):
        ext = extract_programs(
            [
                lambda rank: (yield rank.recv(source=ANY_SOURCE, tag=0))
                and None,
            ]
            * 1
        )
        result = match_sequences(ext.sequences, ext.comms)
        assert not result.applicable
        assert "ANY_SOURCE" in result.reason_skipped

    def test_stuck_but_releasable_is_not_deadlocked(self):
        # Rank 0 blocks on rank 1, which never posts the send because
        # extraction truncated it mid-loop — but with rank 1 still
        # *blocked* (not finished), a single arc is no cycle.
        def waiter(rank):
            yield rank.recv(source=1, tag=0)
            yield rank.send(1, tag=1)
            yield rank.finalize()

        def other(rank):
            yield rank.recv(source=0, tag=1)
            yield rank.send(0, tag=0)
            yield rank.finalize()

        result = self._match(waiter, other)
        assert set(result.deadlocked) == {0, 1}
        assert result.detection is not None
        assert result.graph is not None
