"""Virtual MPI runtime semantics: the substrate's ground truth."""
import pytest

from repro.mpi.blocking import BlockingSemantics
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, PROC_NULL, OpKind
from repro.runtime import run_programs
from repro.util.errors import CollectiveMismatchError, MpiUsageError

from tests.conftest import run_relaxed, run_strict


class TestBasicP2P:
    def test_simple_send_recv(self):
        def p0(r):
            yield r.send(dest=1, tag=4)
            yield r.finalize()

        def p1(r):
            status = yield r.recv(source=0, tag=4)
            assert status.source == 0 and status.tag == 4
            yield r.finalize()

        res = run_strict([p0, p1])
        assert not res.deadlocked
        assert res.matched.send_of == {(1, 0): (0, 0)}

    def test_rendezvous_orders_dont_matter(self):
        """Recv posted before or after the send — both complete."""
        def p0(r):
            yield r.recv(source=1)
            yield r.finalize()

        def p1(r):
            yield r.ssend(dest=0)
            yield r.finalize()

        for seed in range(5):
            res = run_strict([p0, p1], seed=seed)
            assert not res.deadlocked

    def test_tag_selectivity(self):
        def p0(r):
            yield r.send(dest=1, tag=1)
            yield r.send(dest=1, tag=2)
            yield r.finalize()

        def p1(r):
            s2 = yield r.recv(source=0, tag=2)
            s1 = yield r.recv(source=0, tag=1)
            assert (s1.tag, s2.tag) == (1, 2)
            yield r.finalize()

        res = run_relaxed([p0, p1])
        assert not res.deadlocked
        assert res.matched.send_of[(1, 0)] == (0, 1)
        assert res.matched.send_of[(1, 1)] == (0, 0)

    def test_non_overtaking_same_envelope(self):
        """Messages with identical envelopes match in order."""
        def p0(r):
            for _ in range(4):
                yield r.send(dest=1, tag=0)
            yield r.finalize()

        def p1(r):
            for _ in range(4):
                yield r.recv(source=0, tag=0)
            yield r.finalize()

        res = run_relaxed([p0, p1], seed=3)
        for i in range(4):
            assert res.matched.send_of[(1, i)] == (0, i)

    def test_proc_null_completes_immediately(self):
        def p0(r):
            yield r.send(dest=PROC_NULL)
            status = yield r.recv(source=PROC_NULL)
            assert status.source == PROC_NULL
            yield r.finalize()

        def empty(r):
            yield r.finalize()

        res = run_strict([p0, empty])
        assert not res.deadlocked


class TestWildcards:
    def test_wildcard_source_recorded(self):
        def p0(r):
            yield r.send(dest=2)
            yield r.finalize()

        def p1(r):
            yield r.send(dest=2)
            yield r.finalize()

        def p2(r):
            s1 = yield r.recv(source=ANY_SOURCE)
            s2 = yield r.recv(source=ANY_SOURCE)
            assert {s1.source, s2.source} == {0, 1}
            yield r.finalize()

        res = run_relaxed([p0, p1, p2], seed=5)
        assert not res.deadlocked
        ops = res.trace.sequence(2)
        assert {ops[0].observed_peer, ops[1].observed_peer} == {0, 1}

    def test_wildcard_choice_varies_with_seed(self):
        def p0(r):
            yield r.send(dest=2)
            yield r.finalize()

        def p1(r):
            yield r.send(dest=2)
            yield r.finalize()

        def p2(r):
            yield r.recv(source=ANY_SOURCE)
            yield r.recv(source=ANY_SOURCE)
            yield r.finalize()

        first = set()
        for seed in range(20):
            res = run_relaxed([p0, p1, p2], seed=seed)
            first.add(res.trace.sequence(2)[0].observed_peer)
        assert first == {0, 1}  # both interleavings observed

    def test_earliest_policy_is_deterministic(self):
        def p0(r):
            yield r.send(dest=2)
            yield r.finalize()

        def p1(r):
            yield r.send(dest=2)
            yield r.finalize()

        def p2(r):
            yield r.barrier()
            yield r.recv(source=ANY_SOURCE)
            yield r.recv(source=ANY_SOURCE)
            yield r.finalize()

        def with_barrier(p):
            def prog(r):
                yield r.send(dest=2)
                yield r.barrier()
                yield r.finalize()
            return prog

        # Not asserting a specific winner (scheduler decides arrival
        # order), only that the policy resolves without randomness.
        res1 = run_programs([with_barrier(0), with_barrier(1), p2],
                            seed=3, wildcard_policy="earliest")
        res2 = run_programs([with_barrier(0), with_barrier(1), p2],
                            seed=3, wildcard_policy="earliest")
        a = res1.trace.sequence(2)[1].observed_peer
        b = res2.trace.sequence(2)[1].observed_peer
        assert a == b


class TestNonBlockingAndCompletions:
    def test_isend_irecv_waitall(self):
        def p0(r):
            req = yield r.isend(1, tag=1)
            yield r.wait(req)
            yield r.finalize()

        def p1(r):
            req = yield r.irecv(source=0, tag=1)
            status = yield r.wait(req)
            assert status.source == 0
            yield r.finalize()

        res = run_strict([p0, p1])
        assert not res.deadlocked

    def test_waitany_returns_completed_index(self):
        def p0(r):
            r1 = yield r.irecv(source=1, tag=1)
            r2 = yield r.irecv(source=1, tag=2)
            idx, status = yield r.waitany([r1, r2])
            assert idx == 1 and status.tag == 2
            yield r.finalize()

        def p1(r):
            yield r.send(dest=0, tag=2)
            yield r.finalize()

        res = run_relaxed([p0, p1])
        assert not res.deadlocked
        waitany_op = res.trace.sequence(0)[2]
        assert waitany_op.completed_indices == (1,)

    def test_test_is_nonblocking(self):
        def p0(r):
            req = yield r.irecv(source=1, tag=9)
            flag, status = yield r.test(req)
            # Keep testing until the message lands.
            while not flag:
                flag, status = yield r.test(req)
            assert status.tag == 9
            yield r.finalize()

        def p1(r):
            yield r.barrier()
            yield r.send(dest=0, tag=9)
            yield r.finalize()

        def p0_wrap(r):
            yield r.barrier()
            yield from p0(r)

        res = run_relaxed([p0_wrap, p1], seed=2)
        assert not res.deadlocked

    def test_request_reuse_is_a_usage_error(self):
        def p0(r):
            req = yield r.isend(1)
            yield r.wait(req)
            yield r.wait(req)
            yield r.finalize()

        def p1(r):
            yield r.recv(source=0)
            yield r.finalize()

        with pytest.raises(MpiUsageError):
            run_relaxed([p0, p1])

    def test_bsend_never_blocks_even_unreceived(self):
        def p0(r):
            yield r.bsend(dest=1)
            yield r.finalize()

        def p1(r):
            yield r.finalize()

        res = run_strict([p0, p1])
        assert not res.deadlocked
        assert res.unreceived_messages == 1


class TestProbe:
    def test_probe_then_recv(self):
        def p0(r):
            yield r.send(dest=1, tag=3)
            yield r.finalize()

        def p1(r):
            status = yield r.probe(source=0, tag=3)
            assert status.tag == 3
            yield r.recv(source=0, tag=3)
            yield r.finalize()

        res = run_relaxed([p0, p1])
        assert not res.deadlocked
        assert (1, 0) in res.matched.probe_match

    def test_iprobe_flag_false_without_message(self):
        def p0(r):
            flag, status = yield r.iprobe(source=1)
            assert status is None or flag
            yield r.finalize()

        def p1(r):
            yield r.finalize()

        res = run_relaxed([p0, p1], seed=1)
        assert not res.deadlocked


class TestCollectives:
    def test_barrier_synchronizes(self):
        order = []

        def mk(i):
            def prog(r):
                yield r.barrier()
                order.append(i)
                yield r.finalize()
            return prog

        res = run_strict([mk(0), mk(1), mk(2)])
        assert not res.deadlocked
        assert sorted(order) == [0, 1, 2]

    def test_collective_kind_mismatch_detected(self):
        def p0(r):
            yield r.barrier()
            yield r.finalize()

        def p1(r):
            yield r.allreduce()
            yield r.finalize()

        with pytest.raises(CollectiveMismatchError):
            run_relaxed([p0, p1])

    def test_collective_root_mismatch_detected(self):
        def p0(r):
            yield r.reduce(root=0)
            yield r.finalize()

        def p1(r):
            yield r.reduce(root=1)
            yield r.finalize()

        with pytest.raises(CollectiveMismatchError):
            run_relaxed([p0, p1])

    def test_relaxed_reduce_lets_non_root_leave(self):
        """Figure 4's mechanism: non-root exits an unfinished reduce."""
        def p0(r):
            yield r.reduce(root=1)
            yield r.send(dest=1)
            yield r.finalize()

        def p1(r):
            yield r.recv(source=0)  # only satisfiable if p0 left reduce
            yield r.reduce(root=1)
            yield r.finalize()

        res = run_relaxed([p0, p1])
        assert not res.deadlocked
        # Under strict semantics the same program hangs.
        res = run_strict([p0, p1])
        assert res.deadlocked

    def test_comm_dup_and_split(self):
        def prog(r):
            dup = yield r.comm_dup()
            assert dup.comm_id != 0
            sub = yield r.comm_split(color=r.rank % 2)
            assert sub is not None
            assert r.rank in sub.group
            yield r.barrier(comm=sub)
            yield r.finalize()

        res = run_relaxed([prog] * 4, seed=4)
        assert not res.deadlocked
        # world barrier-free: comm_dup+comm_split+sub-barrier+finalize
        comm_ids = {c.comm_id for c in res.matched.collectives}
        assert len(comm_ids) >= 3  # world waves + two split barriers

    def test_sendrecv_composite(self):
        def prog(r):
            peer = 1 - r.rank
            status = yield from r.sendrecv(dest=peer, source=peer)
            assert status.source == peer
            yield r.finalize()

        res = run_strict([prog, prog])
        assert not res.deadlocked
        # Decomposition markers present.
        kinds = [op.kind for op in res.trace.sequence(0)]
        assert OpKind.ISEND in kinds and OpKind.IRECV in kinds
        assert any(
            op.sendrecv_group is not None for op in res.trace.sequence(0)
        )


class TestHangDetection:
    def test_recv_without_send_hangs(self):
        def p0(r):
            yield r.recv(source=1)
            yield r.finalize()

        def p1(r):
            yield r.finalize()

        res = run_relaxed([p0, p1])
        assert res.deadlocked
        assert 0 in res.hung
        # Rank 1 is stuck too: finalize synchronizes in the runtime.
        assert res.trace.op(res.hung[0]).kind is OpKind.RECV

    def test_deterministic_given_seed(self):
        from repro.workloads import stress_programs

        a = run_relaxed(stress_programs(4, iterations=6), seed=9)
        b = run_relaxed(stress_programs(4, iterations=6), seed=9)
        assert a.matched.send_of == b.matched.send_of
        assert a.steps == b.steps
