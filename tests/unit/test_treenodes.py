"""Interior/root node behaviour and protocol error paths."""
import pytest

from repro.core.messages import (
    AckConsistentState,
    CollectiveAck,
    CollectiveReady,
    CollectiveWait,
    P2PWait,
    RankWaitInfo,
    RequestConsistentState,
    RequestWaits,
    WaitInfoMsg,
)
from repro.core.treenodes import InteriorNode, RootNode
from repro.mpi.communicator import CommRegistry
from repro.mpi.constants import OpKind
from repro.tbon.network import Network, fixed_latency
from repro.tbon.topology import TbonTopology
from repro.util.errors import ProtocolError


class _Sink:
    def __init__(self, node_id):
        self.node_id = node_id
        self.received = []

    def handle(self, msg, net, src):
        self.received.append((src, msg))


def _tree16():
    """16 ranks, fan-in 2: first layer 16..23, interior 24..27,
    then 28..29, root 30."""
    return TbonTopology.build(16, 2)


class TestInteriorAggregation:
    def test_collective_ready_forwarded_once_complete(self):
        topo = _tree16()
        comms = CommRegistry(16)
        interior = topo.layers[2][0]  # above first-layer nodes 16, 17
        node = InteriorNode(interior, topo, comms)
        net = Network(fixed_latency())
        parent = _Sink(topo.parent(interior))
        net.attach(parent)
        net.attach(node)

        ready = CollectiveReady(comm_id=0, wave_index=0,
                                kind=OpKind.BARRIER, root=None, count=2)
        node.handle(ready, net, src=topo.children(interior)[0])
        net.run()
        assert not parent.received  # 2 of 4 subtree ranks
        node.handle(ready, net, src=topo.children(interior)[1])
        net.run()
        assert len(parent.received) == 1
        _, msg = parent.received[0]
        assert isinstance(msg, CollectiveReady) and msg.count == 4

    def test_subgroup_collective_counts_only_members(self):
        topo = _tree16()
        comms = CommRegistry(16)
        sub = comms.create([0, 1])  # entirely under the first interior
        interior = topo.layers[2][0]
        node = InteriorNode(interior, topo, comms)
        net = Network(fixed_latency())
        parent = _Sink(topo.parent(interior))
        net.attach(parent)
        net.attach(node)
        node.handle(
            CollectiveReady(comm_id=sub.comm_id, wave_index=0,
                            kind=OpKind.BARRIER, root=None, count=2),
            net, src=topo.children(interior)[0],
        )
        net.run()
        assert len(parent.received) == 1  # both members present already

    def test_ack_aggregation_and_overcount(self):
        topo = _tree16()
        node = InteriorNode(topo.layers[2][0], topo, CommRegistry(16))
        net = Network(fixed_latency())
        parent = _Sink(topo.parent(node.node_id))
        net.attach(parent)
        net.attach(node)
        node.handle(AckConsistentState(0, count=1), net, src=0)
        net.run()
        assert not parent.received
        node.handle(AckConsistentState(0, count=1), net, src=0)
        net.run()
        assert len(parent.received) == 1
        assert parent.received[0][1].count == 2
        # Over-counting within one detection round is a protocol error.
        with pytest.raises(ProtocolError):
            node.handle(AckConsistentState(1, count=3), net, src=0)

    def test_broadcast_forwarded_to_children(self):
        topo = _tree16()
        interior = topo.layers[2][0]
        node = InteriorNode(interior, topo, CommRegistry(16))
        net = Network(fixed_latency())
        children = [_Sink(c) for c in topo.children(interior)]
        for c in children:
            net.attach(c)
        net.attach(node)
        node.handle(RequestWaits(3), net, src=topo.parent(interior))
        net.run()
        for c in children:
            assert len(c.received) == 1

    def test_unknown_message_rejected(self):
        topo = _tree16()
        node = InteriorNode(topo.layers[2][0], topo, CommRegistry(16))
        with pytest.raises(ProtocolError):
            node.handle("garbage", Network(), src=0)


class TestRootProtocol:
    def _root(self, p=4, fan_in=2):
        topo = TbonTopology.build(p, fan_in)
        comms = CommRegistry(p)
        root = RootNode(topo.root, topo, comms)
        net = Network(fixed_latency())
        sinks = {}
        for child in topo.children(topo.root):
            sinks[child] = _Sink(child)
            net.attach(sinks[child])
        net.attach(root)
        return topo, root, net, sinks

    def test_collective_ack_broadcast_at_group_completeness(self):
        topo, root, net, sinks = self._root()
        root.handle(
            CollectiveReady(comm_id=0, wave_index=0, kind=OpKind.BARRIER,
                            root=None, count=4),
            net, src=topo.children(topo.root)[0],
        )
        net.run()
        for sink in sinks.values():
            assert any(
                isinstance(m, CollectiveAck) for _, m in sink.received
            )

    def test_detection_serialization(self):
        topo, root, net, sinks = self._root()
        first = root.start_detection(net)
        second = root.start_detection(net)  # deferred
        assert first == second == 0
        net.run()
        requests = [
            m for sink in sinks.values() for _, m in sink.received
            if isinstance(m, RequestConsistentState)
        ]
        assert len(requests) == len(sinks)  # only one round broadcast

    def test_stray_protocol_messages_rejected(self):
        topo, root, net, _ = self._root()
        with pytest.raises(ProtocolError):
            root.handle(AckConsistentState(detection_id=99), net, src=0)
        with pytest.raises(ProtocolError):
            root.handle(
                WaitInfoMsg(detection_id=99, node_id=0, infos=()),
                net, src=0,
            )

    def test_collective_wait_resolution(self):
        """Root-side expansion of CollectiveWait entries: arcs to every
        group member not blocked in the same wave."""
        topo, root, net, _ = self._root(p=4)
        infos = [
            RankWaitInfo(rank=0, op_description="MPI_Barrier()@0:0",
                         entries=(CollectiveWait(0, 0),)),
            RankWaitInfo(rank=1, op_description="MPI_Barrier()@1:0",
                         entries=(CollectiveWait(0, 0),)),
        ]
        conditions = root._resolve_conditions(
            [WaitInfoMsg(detection_id=0, node_id=99, infos=tuple(infos))]
        )
        # 0 and 1 are in the same wave: they wait only on 2 and 3.
        assert conditions[0].target_ranks() == {2, 3}
        assert conditions[1].target_ranks() == {2, 3}

    def test_waitany_or_resolution(self):
        topo, root, net, _ = self._root(p=4)
        info = RankWaitInfo(
            rank=0,
            op_description="MPI_Waitany()@0:5",
            entries=(
                P2PWait((1,), "r1"),
                P2PWait((2, 3), "r2"),
            ),
            or_semantics=True,
        )
        conditions = root._resolve_conditions(
            [WaitInfoMsg(detection_id=0, node_id=99, infos=(info,))]
        )
        cond = conditions[0]
        assert len(cond.clauses) == 1  # one flattened OR clause
        assert {t.rank for t in cond.clauses[0]} == {1, 2, 3}
