"""The parameterized prover: verdicts, minimal counterexamples,
certificates, and the soundness gates.

Each test pins one leg of the ``repro prove`` contract:

* ``PROVED-ALL-P`` only on admitted, channel-analyzed, sweep-clean
  programs — with a certificate recording what the claim rests on;
* ``REFUTED`` carries the *minimal* failing ``p`` and a witness that
  replays to a real runtime deadlock;
* channel residues predict p-dependent counterexamples before the
  sweep confirms them (``predicted``);
* wildcard programs are never proved (and never "falsified" by the
  linear matcher, which has no authority over them);
* programs outside the uniform-affine certificate fragment fall to
  ``UNKNOWN`` after the falsifier sweeps the default window anyway.
"""
import pytest

from repro.analysis.symbolic import (
    ProveVerdict,
    admit_terms,
    analyze_channels,
    prove_source,
    summarize_source,
)
from repro.analysis.symbolic.paramatch import (
    ALWAYS_MATCHED,
    DEFAULT_WINDOW_HI,
)
from repro.analysis.symbolic.solver import MIN_SIZE
from repro.analysis.witness import replay_witness
from repro.obs.metrics import MetricsRegistry

PARITY = '''
def parity_exchange(rank):
    right = (rank.rank + 1) % rank.size
    left = (rank.rank - 1) % rank.size
    if rank.rank % 2 == 0:
        yield rank.send(dest=right, tag=0)
        yield rank.recv(source=left, tag=0)
    else:
        yield rank.recv(source=left, tag=0)
        yield rank.send(dest=right, tag=0)
    yield rank.allreduce(nbytes=8)
    yield rank.finalize()
'''

# Deadlocks exactly when the size guard flips the parity split into an
# all-send-first ring: p = 6 is the minimal failing count.
GUARDED_RING = '''
def guarded_ring(rank):
    nxt = (rank.rank + 1) % rank.size
    prv = (rank.rank - 1) % rank.size
    if rank.size >= 6:
        yield rank.send(dest=nxt, tag=0)
        yield rank.recv(source=prv, tag=0)
    else:
        if rank.rank % 2 == 0:
            yield rank.send(dest=nxt, tag=0)
            yield rank.recv(source=prv, tag=0)
        else:
            yield rank.recv(source=prv, tag=0)
            yield rank.send(dest=nxt, tag=0)
    yield rank.finalize()
'''

# Rank 0 always expects a message from the last rank, but the last
# rank only sends when it is odd — i.e. when the size is even. Odd
# sizes leave the receive unmatched: a p-dependent channel whose
# residue class predicts the counterexample before the sweep runs.
LAST_ODD = '''
def last_odd_sender(rank):
    if rank.rank == 0:
        yield rank.recv(source=rank.size - 1, tag=0)
    if rank.rank == rank.size - 1:
        if rank.rank % 2 == 1:
            yield rank.send(dest=0, tag=0)
    yield rank.finalize()
'''

WILDCARD = '''
from repro.mpi.constants import ANY_SOURCE


def storm(rank):
    yield rank.recv(source=ANY_SOURCE, tag=0)
    yield rank.finalize()
'''

# The coefficient-2 peer expression leaves the uniform-affine
# certificate fragment even though the guard keeps it dead code.
NONUNIFORM = '''
def nonuniform_guarded(rank):
    if rank.rank == rank.size:
        yield rank.send(dest=(2 * rank.rank) % rank.size, tag=0)
    yield rank.allreduce(nbytes=8)
    yield rank.finalize()
'''


def _prove_one(source, name="prog.py", metrics=None):
    results = prove_source(source, name, metrics=metrics)
    assert len(results) == 1
    return results[0]


def _materialize(source, name):
    """The actual generator function, for witness replay."""
    namespace = {}
    exec(compile(source, name, "exec"), namespace)
    fns = [v for v in namespace.values() if callable(v)]
    assert len(fns) == 1
    return fns[0]


# ----------------------------------------------------------------------
# PROVED-ALL-P
# ----------------------------------------------------------------------

def test_parity_exchange_is_proved_for_all_p():
    result = _prove_one(PARITY)
    assert result.verdict is ProveVerdict.PROVED_ALL_P
    assert result.is_proved
    assert result.min_p is None and result.witness is None
    cert = result.certificate
    assert cert is not None
    # The rank % 2 split makes the period 2; the whole window was
    # confirmed directly, not extrapolated.
    assert cert.modulus_lcm == 2
    assert result.sizes_checked == tuple(range(MIN_SIZE, cert.window_hi))
    assert all(
        ch.classification == ALWAYS_MATCHED
        for ch in cert.channels.channels
    )
    # The classification carries the proof for downstream layers.
    assert result.classification is not None
    assert result.classification.proved_all_p


def test_proved_json_has_the_certificate():
    doc = _prove_one(PARITY).to_json_dict()
    assert doc["verdict"] == "PROVED-ALL-P"
    assert doc["min_p"] is None
    cert = doc["certificate"]
    assert cert["window"][0] == MIN_SIZE
    assert cert["modulus_lcm"] == 2
    assert all(
        ch["classification"] == ALWAYS_MATCHED for ch in cert["channels"]
    )


# ----------------------------------------------------------------------
# REFUTED: minimal p + replaying witness
# ----------------------------------------------------------------------

def test_refuted_reports_the_minimal_failing_p():
    result = _prove_one(GUARDED_RING, "guarded.py")
    assert result.verdict is ProveVerdict.REFUTED
    assert result.min_p == 6
    # Every smaller size was confirmed clean on the way up.
    assert result.sizes_checked == (2, 3, 4, 5, 6)
    assert result.deadlocked == (0, 1, 2, 3, 4, 5)
    assert result.witness is not None
    assert result.certificate is None


def test_refuted_witness_replays_at_min_p():
    result = _prove_one(GUARDED_RING, "guarded.py")
    fn = _materialize(GUARDED_RING, "guarded.py")
    outcome = replay_witness([fn] * result.min_p, result.witness)
    assert outcome.confirmed
    assert outcome.cycles_match


def test_channel_residues_predict_the_counterexample():
    result = _prove_one(LAST_ODD, "lastodd.py")
    assert result.verdict is ProveVerdict.REFUTED
    assert result.min_p == 3  # smallest odd size >= 2 with no sender
    assert result.predicted  # the residue class called it first


def test_ordering_deadlocks_are_not_channel_predicted():
    # The guarded ring keeps every (src, dst) count balanced: the
    # deadlock is an ordering problem the count-based channel solver
    # cannot see. Only the sweep finds it — predicted stays False.
    result = _prove_one(GUARDED_RING, "guarded.py")
    assert result.verdict is ProveVerdict.REFUTED
    assert not result.predicted


# ----------------------------------------------------------------------
# Soundness gates
# ----------------------------------------------------------------------

def test_wildcard_programs_are_never_proved():
    result = _prove_one(WILDCARD, "storm.py")
    assert result.verdict is ProveVerdict.UNDECIDABLE
    assert not result.is_proved
    # No falsification either: the linear matcher has no authority
    # over wildcard programs, so the sweep never ran.
    assert result.sizes_checked == ()
    assert result.min_p is None


def test_unadmitted_programs_fall_to_unknown_after_a_clean_sweep():
    result = _prove_one(NONUNIFORM, "nonuni.py")
    assert result.verdict is ProveVerdict.UNKNOWN
    assert "non-uniform affine term" in result.reason
    # "Falsify anywhere": the default window was still swept clean.
    assert result.sizes_checked == tuple(
        range(MIN_SIZE, DEFAULT_WINDOW_HI)
    )
    assert result.certificate is None


# ----------------------------------------------------------------------
# Admission + channel analysis internals
# ----------------------------------------------------------------------

def _summary(source, name="prog.py"):
    summaries = summarize_source(source, name)
    assert len(summaries) == 1
    return summaries[0]


def test_admission_accepts_the_uniform_affine_fragment():
    admission = admit_terms(_summary(PARITY).terms)
    assert admission.admitted
    assert admission.modulus_lcm == 2
    assert admission.sizes == tuple(range(MIN_SIZE, admission.window_hi))
    assert admission.window_hi >= admission.threshold


def test_admission_rejects_nonuniform_coefficients():
    admission = admit_terms(_summary(NONUNIFORM).terms)
    assert not admission.admitted
    assert "non-uniform affine term" in admission.reason


def test_channel_analysis_classifies_every_site():
    summary = _summary(PARITY)
    admission = admit_terms(summary.terms)
    analysis = analyze_channels(summary.terms, admission)
    assert analysis.channels
    assert analysis.count(ALWAYS_MATCHED) == len(analysis.channels)
    assert analysis.candidate_sizes == ()


def test_p_dependent_channels_yield_candidate_sizes():
    summary = _summary(LAST_ODD, "lastodd.py")
    admission = admit_terms(summary.terms)
    analysis = analyze_channels(summary.terms, admission)
    candidates = analysis.candidate_sizes
    assert candidates  # residues produced concrete suspect sizes
    assert 3 in candidates  # including the true minimal one


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

def test_prove_counters_flow_into_the_registry():
    metrics = MetricsRegistry()
    _prove_one(PARITY, metrics=metrics)
    _prove_one(GUARDED_RING, "guarded.py", metrics=metrics)
    _prove_one(WILDCARD, "storm.py", metrics=metrics)
    counters = metrics.snapshot()["counters"]
    assert counters["prove.runs"] == 3
    assert counters["prove.proved"] == 1
    assert counters["prove.refuted"] == 1
    assert counters["prove.undecidable"] == 1
    assert counters["prove.sizes_checked"] > 0
    assert counters["prove.linear_ops"] > 0
    assert counters["prove.channels.always"] > 0
