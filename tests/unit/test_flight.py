"""The always-on flight recorder: bounded per-rank event rings."""
import pytest

from repro.mpi.blocking import BlockingSemantics
from repro.obs.flight import (
    NULL_FLIGHT_RECORDER,
    FlightRecorder,
    NullFlightRecorder,
)
from repro.runtime import run_programs


class TestRing:
    def test_records_in_order_below_capacity(self):
        fr = FlightRecorder(capacity=8)
        for i in range(3):
            fr.record(0, f"e{i}", float(i))
        tail = fr.tail(0)
        assert [e["event"] for e in tail] == ["e0", "e1", "e2"]
        assert [e["seq"] for e in tail] == [0, 1, 2]
        assert fr.count(0) == 3
        assert fr.dropped(0) == 0

    def test_wraparound_keeps_last_n(self):
        fr = FlightRecorder(capacity=4)
        for i in range(10):
            fr.record(0, f"e{i}", float(i))
        tail = fr.tail(0)
        assert len(tail) == 4
        # Oldest-first, and only the newest four survive.
        assert [e["event"] for e in tail] == ["e6", "e7", "e8", "e9"]
        assert [e["seq"] for e in tail] == [6, 7, 8, 9]
        assert fr.count(0) == 10
        assert fr.dropped(0) == 6

    def test_wraparound_exact_multiple_of_capacity(self):
        fr = FlightRecorder(capacity=3)
        for i in range(6):
            fr.record(0, f"e{i}", float(i))
        assert [e["seq"] for e in fr.tail(0)] == [3, 4, 5]

    def test_ranks_are_independent(self):
        fr = FlightRecorder(capacity=2)
        fr.record(0, "a", 0.0)
        fr.record(1, "b", 0.0)
        fr.record(1, "c", 1.0)
        fr.record(1, "d", 2.0)
        assert fr.count(0) == 1 and fr.count(1) == 3
        assert fr.dropped(0) == 0 and fr.dropped(1) == 1
        assert sorted(fr.ranks()) == [0, 1]

    def test_detail_rendered_lazily_via_describe(self):
        class Op:
            def describe(self):
                return "MPI_Send(to=1)"

        fr = FlightRecorder(capacity=2)
        fr.record(0, "block", 1.0, Op())
        (entry,) = fr.tail(0)
        assert entry["detail"] == "MPI_Send(to=1)"

    def test_snapshot_filters_ranks(self):
        fr = FlightRecorder(capacity=2)
        fr.record(0, "a", 0.0)
        fr.record(1, "b", 0.0)
        snap = fr.snapshot([1])
        assert list(snap) == [1]
        assert snap[1][0]["event"] == "b"

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestNullRecorder:
    def test_records_nothing(self):
        fr = NullFlightRecorder()
        fr.record(0, "a", 0.0)
        assert not fr.enabled
        assert fr.tail(0) == []
        assert fr.snapshot() == {}

    def test_shared_instance_is_disabled(self):
        assert not NULL_FLIGHT_RECORDER.enabled


def _ring_programs(p):
    def prog(r):
        right = (r.rank + 1) % r.size
        left = (r.rank - 1) % r.size
        yield r.send(dest=right, tag=0, nbytes=64)
        yield r.recv(source=left, tag=0, nbytes=64)
        yield r.finalize()

    return [prog] * p


class TestIntegration:
    def test_engine_flight_on_by_default(self):
        result = run_programs(
            _ring_programs(3), semantics=BlockingSemantics.relaxed()
        )
        assert result.flight is not None and result.flight.enabled
        # Every rank issued operations; issues are recorded.
        for rank in range(3):
            events = [e["event"] for e in result.flight.tail(rank)]
            assert "issue" in events

    def test_engine_flight_records_blocks_on_deadlock(self):
        result = run_programs(
            _ring_programs(3), semantics=BlockingSemantics()
        )
        assert result.deadlocked
        blocked = [
            e
            for rank in range(3)
            for e in result.flight.tail(rank)
            if e["event"] == "block"
        ]
        assert blocked

    def test_engine_flight_opt_out(self):
        result = run_programs(
            _ring_programs(3),
            semantics=BlockingSemantics.relaxed(),
            flight=NullFlightRecorder(),
        )
        assert result.flight.tail(0) == []

    def test_detection_record_embeds_tails(self):
        from repro.core.detector import detect_deadlocks_distributed

        run = run_programs(
            _ring_programs(4), semantics=BlockingSemantics.relaxed()
        )
        outcome = detect_deadlocks_distributed(run.matched, fan_in=2)
        record = outcome.detection
        assert record.has_deadlock
        assert sorted(record.flight_tails) == sorted(outcome.deadlocked)
        for rank, tail in record.flight_tails.items():
            events = [e["event"] for e in tail]
            assert "blocked@detection" in events
        assert record.blame  # the blame chain rode along
        assert record.json_report is not None
        assert record.json_report["blame_chain"]
