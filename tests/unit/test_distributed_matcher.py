"""The receiver-located distributed p2p matcher in isolation."""
import pytest

from repro.core.messages import PassSend
from repro.matching.distributed_p2p import NodeP2PMatcher
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, OpKind
from repro.mpi.ops import Operation


def _recv(rank=1, ts=0, peer=0, tag=0, observed=None, kind=OpKind.RECV):
    return Operation(
        kind=kind, rank=rank, ts=ts, peer=peer, tag=tag,
        observed_peer=observed,
        request=0 if kind is OpKind.IRECV else None,
    )


def _send_info(rank=0, ts=0, dest=1, tag=0):
    return PassSend(send_rank=rank, send_ts=ts, comm_id=0, dest=dest,
                    tag=tag, nbytes=8)


class TestSendFirst:
    def test_send_then_recv(self):
        m = NodeP2PMatcher()
        assert m.store_send(_send_info()) == []
        event = m.post_receive(_recv())
        assert event is not None
        assert event.send.send_ref == (0, 0)
        assert not event.is_probe

    def test_sends_consumed_in_order(self):
        m = NodeP2PMatcher()
        m.store_send(_send_info(ts=0))
        m.store_send(_send_info(ts=1))
        first = m.post_receive(_recv(ts=0))
        second = m.post_receive(_recv(ts=1))
        assert first.send.send_ts == 0
        assert second.send.send_ts == 1

    def test_tag_selective_consumption(self):
        m = NodeP2PMatcher()
        m.store_send(_send_info(ts=0, tag=1))
        m.store_send(_send_info(ts=1, tag=2))
        event = m.post_receive(_recv(tag=2))
        assert event.send.send_ts == 1
        event = m.post_receive(_recv(tag=ANY_TAG))
        assert event.send.send_ts == 0


class TestRecvFirst:
    def test_recv_waits_for_send(self):
        m = NodeP2PMatcher()
        assert m.post_receive(_recv()) is None
        assert m.pending_receive_count() == 1
        events = m.store_send(_send_info())
        assert len(events) == 1
        assert events[0].recv_ref == (1, 0)
        assert m.pending_receive_count() == 0

    def test_earliest_posted_recv_wins(self):
        m = NodeP2PMatcher()
        m.post_receive(_recv(ts=0))
        m.post_receive(_recv(ts=1))
        events = m.store_send(_send_info())
        assert [e.recv_ref for e in events] == [(1, 0)]


class TestWildcards:
    def test_resolved_wildcard_matches_observed_source(self):
        m = NodeP2PMatcher()
        m.store_send(_send_info(rank=0, ts=0))
        m.store_send(_send_info(rank=2, ts=0))
        event = m.post_receive(
            _recv(peer=ANY_SOURCE, tag=ANY_TAG, observed=2)
        )
        assert event.send.send_rank == 2

    def test_unresolved_wildcard_never_matches(self):
        m = NodeP2PMatcher()
        assert m.post_receive(_recv(peer=ANY_SOURCE)) is None
        events = m.store_send(_send_info())
        assert events == []  # the recv's source is unresolved forever


class TestProbes:
    def test_probe_matches_without_consuming(self):
        m = NodeP2PMatcher()
        m.store_send(_send_info())
        probe = Operation(kind=OpKind.PROBE, rank=1, ts=0, peer=0,
                          observed_peer=0)
        event = m.post_receive(probe)
        assert event is not None and event.is_probe
        # The message is still available for the real receive.
        event = m.post_receive(_recv(ts=1))
        assert event is not None and not event.is_probe

    def test_pending_probe_matched_by_late_send(self):
        m = NodeP2PMatcher()
        probe = Operation(kind=OpKind.PROBE, rank=1, ts=0, peer=0,
                          observed_peer=0)
        assert m.post_receive(probe) is None
        events = m.store_send(_send_info())
        assert len(events) == 1 and events[0].is_probe
        assert m.stored_send_count() == 1  # probe did not consume

    def test_probe_and_recv_share_one_send(self):
        m = NodeP2PMatcher()
        probe = Operation(kind=OpKind.PROBE, rank=1, ts=0, peer=0,
                          observed_peer=0)
        m.post_receive(probe)
        m.post_receive(_recv(ts=1))
        events = m.store_send(_send_info())
        kinds = sorted(e.is_probe for e in events)
        assert kinds == [False, True]
        assert m.stored_send_count() == 0
