"""Performance model: placement, cost primitives, figure shapes."""
import math

import pytest

from repro.perf import (
    SIERRA,
    CostModel,
    PhaseTimers,
    Placement,
    StressTestConfig,
    spec_slowdown,
    stress_centralized_slowdown,
    stress_distributed_slowdown,
    stress_reference_iteration,
    stress_sweep,
)
from repro.perf.timers import (
    PHASE_DEADLOCK_CHECK,
    PHASE_GRAPH_BUILD,
    PHASE_OUTPUT,
)
from repro.workloads.specmpi import (
    EXCLUDED_FROM_AVERAGE,
    SPEC_PROFILES,
)


class TestPlacement:
    def test_twelve_cores_per_node(self):
        p = Placement()
        assert p.host_of(0) == 0
        assert p.host_of(11) == 0
        assert p.host_of(12) == 1
        assert p.same_host(0, 11)
        assert not p.same_host(11, 12)

    def test_hosts_for(self):
        assert Placement().hosts_for(1) == 1
        assert Placement().hosts_for(12) == 1
        assert Placement().hosts_for(13) == 2

    def test_ring_internode_fraction(self):
        p = Placement()
        assert p.internode_fraction_ring(8) == 0.0  # single node
        f16 = p.internode_fraction_ring(16)
        f24 = p.internode_fraction_ring(24)
        f240 = p.internode_fraction_ring(240)
        # Drops from the 2-node case and saturates near 1/cores-per-node.
        assert f16 > f24 >= f240 > 0
        assert abs(f240 - 1 / 12) < 0.01


class TestCostPrimitives:
    def test_intra_cheaper_than_inter(self):
        assert SIERRA.p2p_latency(0, 1) < SIERRA.p2p_latency(0, 20)

    def test_payload_adds_bandwidth_term(self):
        assert SIERRA.p2p_latency(0, 20, nbytes=1 << 20) > SIERRA.p2p_latency(
            0, 20, nbytes=4
        )

    def test_barrier_grows_with_scale(self):
        b = [SIERRA.barrier_time(p) for p in (2, 16, 256, 4096)]
        assert all(x < y for x, y in zip(b, b[1:]))
        assert SIERRA.barrier_time(1) == 0.0


class TestFigure9Shape:
    """The reproduced claims of Figure 9."""

    PS = (16, 64, 256, 1024, 4096)

    def test_distributed_slowdown_does_not_increase_with_scale(self):
        for fan_in in (2, 4, 8):
            series = [
                stress_distributed_slowdown(p, fan_in) for p in self.PS
            ]
            assert all(a >= b for a, b in zip(series, series[1:]))

    def test_fanin_ordering(self):
        """Lower fan-in -> lower overhead (Section 6)."""
        for p in self.PS:
            s2 = stress_distributed_slowdown(p, 2)
            s4 = stress_distributed_slowdown(p, 4)
            s8 = stress_distributed_slowdown(p, 8)
            assert s2 < s4 < s8

    def test_paper_anchor_points(self):
        """~70x at 16 procs and ~45x at 4,096 procs for fan-in 2."""
        assert 55 <= stress_distributed_slowdown(16, 2) <= 90
        assert 35 <= stress_distributed_slowdown(4096, 2) <= 60

    def test_centralized_grows_and_projects_to_thousands(self):
        series = [stress_centralized_slowdown(p) for p in self.PS]
        assert all(a < b for a, b in zip(series, series[1:]))
        projected = stress_centralized_slowdown(4096)
        assert 5000 <= projected <= 15000  # paper: ~8,000

    def test_crossover_distributed_wins_at_scale(self):
        assert stress_centralized_slowdown(512) > (
            stress_distributed_slowdown(512, 2)
        )

    def test_sweep_masks_centralized_beyond_512(self):
        data = stress_sweep((256, 512, 1024))
        assert not math.isnan(data["centralized"][1])
        assert math.isnan(data["centralized"][2])
        assert not math.isnan(data["centralized_projected"][2])

    def test_invalid_fan_in(self):
        with pytest.raises(ValueError):
            stress_distributed_slowdown(16, 1)


class TestFigure12Shape:
    def test_communication_bound_apps_are_worst(self):
        slow = {
            name: spec_slowdown(profile, 2048)
            for name, profile in SPEC_PROFILES.items()
        }
        ranked = sorted(slow, key=slow.get, reverse=True)
        worst_wo_gap = [n for n in ranked if n not in EXCLUDED_FROM_AVERAGE]
        assert set(worst_wo_gap[:2]) == {"121.pop2", "143.dleslie"}

    def test_lu_and_dmilc_show_gains(self):
        assert spec_slowdown(SPEC_PROFILES["137.lu"], 2048) < 1.0
        assert spec_slowdown(SPEC_PROFILES["142.dmilc"], 2048) < 1.05

    def test_average_near_34_percent(self):
        values = [
            spec_slowdown(profile, 2048)
            for name, profile in SPEC_PROFILES.items()
            if name not in EXCLUDED_FROM_AVERAGE
        ]
        avg = sum(values) / len(values)
        assert 1.20 <= avg <= 1.50  # paper: 1.34

    def test_most_apps_low_overhead(self):
        low = sum(
            1
            for name, profile in SPEC_PROFILES.items()
            if name not in EXCLUDED_FROM_AVERAGE
            and spec_slowdown(profile, 2048) < 1.4
        )
        assert low >= 9  # "slowdowns are low for most applications"


class TestPhaseTimers:
    def test_accumulation_and_breakdown(self):
        t = PhaseTimers()
        with t.phase(PHASE_GRAPH_BUILD):
            pass
        t.add(PHASE_OUTPUT, 3.0)
        t.add(PHASE_OUTPUT, 1.0)
        assert t.elapsed(PHASE_OUTPUT) == 4.0
        assert t.total() >= 4.0
        order = list(t.breakdown())
        assert order.index(PHASE_GRAPH_BUILD) < order.index(PHASE_OUTPUT)

    def test_shares_sum_to_one(self):
        t = PhaseTimers()
        t.add(PHASE_GRAPH_BUILD, 1.0)
        t.add(PHASE_DEADLOCK_CHECK, 3.0)
        shares = t.shares()
        assert abs(sum(shares.values()) - 1.0) < 1e-12
        assert shares[PHASE_DEADLOCK_CHECK] == 0.75

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            PhaseTimers().add("x", -1.0)

    def test_empty_shares(self):
        assert PhaseTimers().shares() == {}
