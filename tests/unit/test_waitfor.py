"""Wait-for condition extraction from blocked states."""
import pytest

from repro.core.transition import TransitionSystem
from repro.core.waitfor import wait_for_condition, wait_for_conditions
from repro.mpi.communicator import CommRegistry
from repro.mpi.constants import ANY_SOURCE, OpKind
from repro.mpi.ops import Operation
from repro.mpi.trace import MatchedTrace, PendingCollective, Trace


def test_unmatched_directed_send_targets_destination():
    s0 = [Operation(kind=OpKind.SEND, rank=0, ts=0, peer=1)]
    s1 = [Operation(kind=OpKind.FINALIZE, rank=1, ts=0)]
    ts = TransitionSystem(MatchedTrace(Trace([s0, s1]), CommRegistry(2)))
    cond = wait_for_condition(ts, (0, 0), 0)
    assert len(cond.clauses) == 1
    assert [t.rank for t in cond.clauses[0]] == [1]
    assert cond.is_pure_and()


def test_matched_inactive_partner():
    s0 = [
        Operation(kind=OpKind.RECV, rank=0, ts=0, peer=1),
    ]
    s1 = [
        Operation(kind=OpKind.BARRIER, rank=1, ts=0),
        Operation(kind=OpKind.SEND, rank=1, ts=1, peer=0),
    ]
    matched = MatchedTrace(Trace([s0, s1]), CommRegistry(2))
    matched.add_p2p_match((1, 1), (0, 0))
    ts = TransitionSystem(matched)
    cond = wait_for_condition(ts, (0, 0), 0)
    assert [t.rank for t in cond.clauses[0]] == [1]
    assert "not yet active" in cond.clauses[0][0].reason


def test_wildcard_receive_or_clause():
    s = [[Operation(kind=OpKind.RECV, rank=i, ts=0, peer=ANY_SOURCE)]
         for i in range(4)]
    ts = TransitionSystem(MatchedTrace(Trace(s), CommRegistry(4)))
    cond = wait_for_condition(ts, (0, 0, 0, 0), 2)
    assert len(cond.clauses) == 1
    assert sorted(t.rank for t in cond.clauses[0]) == [0, 1, 3]
    assert not cond.is_pure_and()
    assert cond.arc_count() == 3


def test_collective_targets_missing_members():
    s0 = [Operation(kind=OpKind.BARRIER, rank=0, ts=0)]
    s1 = [Operation(kind=OpKind.BARRIER, rank=1, ts=0)]
    s2 = []  # rank 2 never arrives
    matched = MatchedTrace(Trace([s0, s1, s2]), CommRegistry(3))
    matched.add_pending_collective(
        PendingCollective(comm_id=0, index=0,
                          arrived={0: (0, 0), 1: (1, 0)})
    )
    ts = TransitionSystem(matched)
    cond = wait_for_condition(ts, (0, 0, 0), 0)
    # Rank 1 has activated its barrier op (l_1 = 0 >= 0): only rank 2
    # is a target.
    assert sorted(cond.target_ranks()) == [2]
    assert "never called" in cond.clauses[0][0].reason


def test_waitall_condition_is_and_of_targets():
    s0 = [
        Operation(kind=OpKind.IRECV, rank=0, ts=0, peer=1, tag=1, request=0),
        Operation(kind=OpKind.IRECV, rank=0, ts=1, peer=2, tag=2, request=1),
        Operation(kind=OpKind.WAITALL, rank=0, ts=2, requests=(0, 1)),
    ]
    matched = MatchedTrace(Trace([s0, [], []]), CommRegistry(3))
    matched.register_request(0, 0, (0, 0))
    matched.register_request(0, 1, (0, 1))
    ts = TransitionSystem(matched)
    cond = wait_for_condition(ts, (2, 0, 0), 0)
    assert len(cond.clauses) == 2
    assert cond.target_ranks() == {1, 2}
    assert cond.is_pure_and()


def test_waitany_condition_is_one_or_clause():
    s0 = [
        Operation(kind=OpKind.IRECV, rank=0, ts=0, peer=1, tag=1, request=0),
        Operation(kind=OpKind.IRECV, rank=0, ts=1, peer=2, tag=2, request=1),
        Operation(kind=OpKind.WAITANY, rank=0, ts=2, requests=(0, 1)),
    ]
    matched = MatchedTrace(Trace([s0, [], []]), CommRegistry(3))
    matched.register_request(0, 0, (0, 0))
    matched.register_request(0, 1, (0, 1))
    ts = TransitionSystem(matched)
    cond = wait_for_condition(ts, (2, 0, 0), 0)
    assert len(cond.clauses) == 1
    assert sorted(t.rank for t in cond.clauses[0]) == [1, 2]


def test_conditions_cover_exactly_blocked_set():
    s0 = [Operation(kind=OpKind.SEND, rank=0, ts=0, peer=1)]
    s1 = [Operation(kind=OpKind.FINALIZE, rank=1, ts=0)]
    ts = TransitionSystem(MatchedTrace(Trace([s0, s1]), CommRegistry(2)))
    conds = wait_for_conditions(ts, (0, 0))
    assert set(conds) == {0}


def test_non_blocked_process_rejected():
    s0 = [
        Operation(kind=OpKind.BARRIER, rank=0, ts=0),
    ]
    matched = MatchedTrace(Trace([s0]), CommRegistry(1))
    from repro.mpi.trace import CollectiveMatch

    matched.add_collective_match(
        CollectiveMatch(comm_id=0, members=frozenset({(0, 0)}))
    )
    ts = TransitionSystem(matched)
    # Rank 0 can advance (its singleton barrier is complete): asking
    # for a wait-for condition is a caller bug for p2p ops; for
    # collectives it returns an empty AND (no unmet members).
    cond = wait_for_condition(ts, (0,), 0)
    assert cond.clauses == []
