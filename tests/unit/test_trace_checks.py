"""Whole-trace check edge cases: empty, single-rank, truncated waves."""
from repro.checks import Severity, run_all_checks
from repro.checks.trace_checks import check_truncated_collectives
from repro.mpi.communicator import CommRegistry
from repro.mpi.trace import MatchedTrace, Trace
from tests.conftest import run_relaxed


def _by_check(findings):
    out = {}
    for f in findings:
        out.setdefault(f.check, []).append(f)
    return out


class TestEmptyTraces:
    def test_empty_two_rank_trace(self):
        matched = MatchedTrace(Trace([[], []]), CommRegistry(2))
        findings = run_all_checks(matched)
        missing = _by_check(findings)["missing-finalize"]
        assert [f.rank for f in missing] == [0, 1]
        assert all(f.severity is Severity.INFO for f in missing)
        assert not [f for f in findings if f.severity is Severity.ERROR]

    def test_one_silent_rank_among_active_ones(self):
        def talker(r):
            yield r.finalize()

        def silent(r):
            if False:
                yield
            return

        res = run_relaxed([talker, silent], seed=0)
        findings = run_all_checks(res.matched)
        missing = _by_check(findings)["missing-finalize"]
        assert [f.rank for f in missing] == [1]
        assert "no MPI operations" in missing[0].message


class TestSingleRankTraces:
    def test_single_rank_clean_run(self):
        def solo(r):
            yield r.barrier()  # world of size 1: completes immediately
            yield r.finalize()

        res = run_relaxed([solo], seed=0)
        findings = run_all_checks(res.matched)
        assert not findings

    def test_single_rank_self_send_is_flagged_not_crashed(self):
        def solo(r):
            yield r.bsend(dest=0, tag=0)
            yield r.finalize()

        res = run_relaxed([solo], seed=0)
        findings = run_all_checks(res.matched)
        checks = _by_check(findings)
        assert "self-message" in checks
        assert "lost-message" in checks


class TestTruncatedCollectives:
    def test_partial_barrier_wave_is_reported(self):
        def caller(r):
            yield r.barrier()
            yield r.finalize()

        def skipper(r):
            yield r.finalize()

        res = run_relaxed([caller, skipper], seed=0)
        assert res.deadlocked
        findings = run_all_checks(res.matched)
        (trunc,) = _by_check(findings)["truncated-collective"]
        assert trunc.severity is Severity.WARNING
        assert trunc.rank == 0
        assert "reached by ranks [0] but never by [1]" in trunc.message
        assert "test_trace_checks.py" in trunc.location

    def test_complete_waves_are_not_reported(self):
        def prog(r):
            yield r.barrier()
            yield r.allreduce()
            yield r.finalize()

        res = run_relaxed([prog, prog], seed=0)
        assert not check_truncated_collectives(res.matched)

    def test_wave_on_subcommunicator_names_the_comm(self):
        def member(r):
            sub = yield r.comm_split(color=0 if r.rank < 2 else None)
            if sub is not None:
                yield r.barrier(comm=sub)
                if r.rank == 0:
                    yield r.barrier(comm=sub)  # rank 1 never joins
            yield r.finalize()

        res = run_relaxed([member] * 3, seed=0)
        findings = check_truncated_collectives(res.matched)
        assert len(findings) == 1
        assert "communicator" in findings[0].message
        assert "never by [1]" in findings[0].message
