"""Session reuse: back-to-back jobs on one Session must not leak
observability state, and concurrent Sessions must be independent.

This is the contract the ``repro serve`` worker pool relies on — each
worker keeps one Session alive and runs many jobs through it.
"""
import threading

import pytest

from repro.api import Session
from repro.workloads import fig2a_programs, stress_programs


class TestSequentialReuse:
    def test_second_run_gets_a_fresh_flight_recorder(self):
        session = Session()
        session.run(fig2a_programs())
        first_flight = session.flight
        assert first_flight.count(0) > 0
        session.run(stress_programs(4, iterations=2))
        assert session.flight is not first_flight

    def test_pin_counters_reset_between_runs(self):
        session = Session()
        session.run(fig2a_programs())
        session.run(stress_programs(4, iterations=2))
        reused_counts = {
            rank: session.flight.count(rank)
            for rank in session.flight.ranks()
        }
        fresh = Session()
        fresh.run(stress_programs(4, iterations=2))
        fresh_counts = {
            rank: fresh.flight.count(rank) for rank in fresh.flight.ranks()
        }
        assert reused_counts == fresh_counts

    def test_second_run_gets_a_fresh_tracer_and_metrics(self):
        session = Session(observe=True)
        session.run(fig2a_programs())
        first_observer = session.observer
        first_events = len(first_observer.tracer.events)
        assert first_events > 0
        session.run(fig2a_programs())
        assert session.observer is not first_observer
        assert len(session.observer.tracer.events) == first_events

    def test_verdicts_survive_reuse(self):
        session = Session()
        assert session.run(fig2a_programs()).deadlocked == (0, 1)
        assert not session.run(stress_programs(4, iterations=2)).has_deadlock
        assert session.run(fig2a_programs()).deadlocked == (0, 1)

    def test_reanalysis_of_the_same_run_keeps_state(self):
        session = Session()
        run = session.record(fig2a_programs())
        session.analyze()
        flight = session.flight
        session.analyze()  # re-analyze last_run
        assert session.flight is flight
        session.analyze(run)  # same RunResult, explicitly
        assert session.flight is flight
        session.analyze(run.matched)  # its matched trace, explicitly
        assert session.flight is flight

    def test_analyzing_an_unrelated_trace_starts_a_new_cycle(self):
        other = Session().record(stress_programs(4, iterations=2))
        session = Session()
        session.run(fig2a_programs())
        flight = session.flight
        outcome = session.analyze(other.matched)
        assert session.flight is not flight
        assert not outcome.has_deadlock

    def test_explicit_reset_clears_results(self):
        session = Session()
        session.run(fig2a_programs())
        assert session.reset() is session
        assert session.last_run is None
        assert session.last_outcome is None
        assert session.last_verdict is None
        with pytest.raises(ValueError, match="record a run first"):
            session.analyze()

    def test_export_rearms_on_reuse(self, tmp_path):
        trace = tmp_path / "reuse.trace.json"
        session = Session(trace_out=str(trace))
        session.run(fig2a_programs())
        session.export()
        assert trace.exists()
        trace.unlink()
        session.export()  # still idempotent within one cycle
        assert not trace.exists()
        session.run(stress_programs(4, iterations=2))
        session.export()
        assert trace.exists()

    def test_sharded_session_reuse(self):
        session = Session(backend="sharded", shards=2)
        assert session.run(fig2a_programs()).deadlocked == (0, 1)
        assert not session.run(stress_programs(4, iterations=2)).has_deadlock


class TestBackendLifecycle:
    def test_close_is_idempotent(self):
        session = Session()
        session.run(fig2a_programs())
        session.close()
        session.close()

    def test_session_is_reusable_after_close(self):
        session = Session()
        session.run(fig2a_programs())
        session.close()
        assert session.run(fig2a_programs()).deadlocked == (0, 1)

    def test_context_exit_closes_the_backend(self):
        closed = []
        with Session() as session:
            original = session.backend.close
            session.backend.close = lambda: (closed.append(True), original())
            session.run(fig2a_programs())
        assert closed == [True]


class TestConcurrentSessions:
    def test_threaded_sessions_are_independent(self):
        results = {}
        errors = []

        def job(name, programs, expect_deadlock):
            try:
                session = Session()
                outcome = session.run(programs)
                results[name] = (
                    outcome.has_deadlock,
                    {
                        rank: session.flight.count(rank)
                        for rank in session.flight.ranks()
                    },
                )
                assert outcome.has_deadlock is expect_deadlock
            except Exception as exc:  # pragma: no cover - failure path
                errors.append((name, exc))

        threads = [
            threading.Thread(
                target=job, args=(f"dl-{i}", fig2a_programs(), True)
            )
            for i in range(3)
        ] + [
            threading.Thread(
                target=job,
                args=(f"ok-{i}", stress_programs(4, iterations=2), False),
            )
            for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == 6
        # every deadlock job saw the same flight profile, independent of
        # the clean jobs running beside it
        dl_counts = {results[f"dl-{i}"][1][0] for i in range(3)}
        assert len(dl_counts) == 1
