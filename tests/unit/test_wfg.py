"""Wait-for graphs: construction, AND/OR deadlock criterion, outputs."""
import pytest

from repro.core.waitfor import WaitForCondition, WaitTarget
from repro.wfg import (
    WaitForGraph,
    detect_deadlock,
    render_aggregated_dot,
    render_dot,
    render_html_report,
    simplify,
)
from repro.wfg.simplify import RankSet


def _cond(rank, clauses, desc="op"):
    cond = WaitForCondition(rank=rank, op_ref=(rank, 0), op_description=desc)
    for clause in clauses:
        cond.clauses.append(tuple(WaitTarget(t, "r") for t in clause))
    return cond


class TestGraph:
    def test_arc_count_and_successors(self):
        g = WaitForGraph.from_conditions(
            4, [_cond(0, [[1], [2]]), _cond(1, [[2, 3]])]
        )
        assert g.arc_count() == 4
        assert g.successors(0) == {1, 2}
        assert g.successors(1) == {2, 3}
        assert g.successors(2) == set()
        assert len(list(g.arcs())) == 4

    def test_duplicate_rank_rejected(self):
        g = WaitForGraph(2)
        g.add_condition(_cond(0, [[1]]))
        with pytest.raises(ValueError):
            g.add_condition(_cond(0, [[1]]))

    def test_rank_outside_universe_rejected(self):
        with pytest.raises(ValueError):
            WaitForGraph.from_conditions(2, [_cond(5, [[1]])])

    def test_finished_rank_cannot_be_blocked(self):
        g = WaitForGraph(3, finished={1})
        with pytest.raises(ValueError):
            g.add_condition(_cond(1, [[0]]))


class TestDetection:
    def test_two_cycle(self):
        g = WaitForGraph.from_conditions(2, [_cond(0, [[1]]), _cond(1, [[0]])])
        result = detect_deadlock(g)
        assert result.deadlocked == (0, 1)
        assert set(result.witness_cycle) == {0, 1}

    def test_chain_to_running_process_is_releasable(self):
        g = WaitForGraph.from_conditions(3, [_cond(0, [[1]]), _cond(1, [[2]])])
        result = detect_deadlock(g)
        assert not result.has_deadlock
        assert result.releasable == (0, 1)

    def test_chain_to_finished_process_is_deadlocked(self):
        g = WaitForGraph.from_conditions(
            3, [_cond(0, [[1]]), _cond(1, [[2]])], finished={2}
        )
        result = detect_deadlock(g)
        assert result.deadlocked == (0, 1)

    def test_or_clause_released_by_one_live_target(self):
        # 0 waits for any of {1, 2}; 1 deadlocks with... only 1<->0
        # cannot deadlock because 0's OR includes running process 2.
        g = WaitForGraph.from_conditions(
            3, [_cond(0, [[1, 2]]), _cond(1, [[0]])]
        )
        result = detect_deadlock(g)
        assert not result.has_deadlock

    def test_or_knot_deadlocks(self):
        """Everyone OR-waits on everyone else: the wildcard case."""
        p = 5
        conds = [
            _cond(i, [[j for j in range(p) if j != i]]) for i in range(p)
        ]
        g = WaitForGraph.from_conditions(p, conds)
        result = detect_deadlock(g)
        assert result.deadlocked == tuple(range(p))
        assert len(result.witness_cycle) >= 2

    def test_and_needs_all_clauses(self):
        # 0 waits for 1 AND 2; 1 is deadlocked with 0; 2 is running.
        g = WaitForGraph.from_conditions(
            3, [_cond(0, [[1], [2]]), _cond(1, [[0]])]
        )
        result = detect_deadlock(g)
        assert result.deadlocked == (0, 1)

    def test_empty_clause_is_unsatisfiable(self):
        g = WaitForGraph.from_conditions(2, [_cond(0, [[]])])
        result = detect_deadlock(g)
        assert result.deadlocked == (0,)
        assert result.witness_cycle == ()  # no cycle, still deadlocked

    def test_no_blocked_processes(self):
        result = detect_deadlock(WaitForGraph(4))
        assert not result.has_deadlock
        assert result.releasable == ()

    def test_mixed_partition(self):
        # 0<->1 deadlock; 2 waits on 3 (running): releasable.
        g = WaitForGraph.from_conditions(
            4, [_cond(0, [[1]]), _cond(1, [[0]]), _cond(2, [[3]])]
        )
        result = detect_deadlock(g)
        assert result.deadlocked == (0, 1)
        assert result.releasable == (2,)


class TestDot:
    def test_nodes_arcs_and_styles(self):
        g = WaitForGraph.from_conditions(
            3, [_cond(0, [[1, 2]], desc="MPI_Recv(from=ANY)@0:0"),
                _cond(1, [[0]], desc="MPI_Send(to=0)@1:0")]
        )
        result = detect_deadlock(g)
        dot = render_dot(g, result)
        assert dot.startswith("digraph wfg {")
        assert dot.strip().endswith("}")
        assert "n0 -> n1" in dot and "n0 -> n2" in dot and "n1 -> n0" in dot
        assert "style=dashed" in dot  # the OR clause
        assert "(running)" in dot  # stub for rank 2

    def test_finished_stub_label(self):
        g = WaitForGraph.from_conditions(2, [_cond(0, [[1]])], finished={1})
        dot = render_dot(g, detect_deadlock(g))
        assert "(finished)" in dot

    def test_quotes_escaped(self):
        g = WaitForGraph.from_conditions(
            1, [_cond(0, [[0]], desc='weird"label')]
        )
        assert '\\"' in render_dot(g)


class TestHtmlReport:
    def _graph(self):
        conds = {
            0: _cond(0, [[1]], desc="MPI_Send(to=1)@0:2"),
            1: _cond(1, [[0]], desc="MPI_Recv(from=0)@1:1"),
        }
        g = WaitForGraph.from_conditions(2, conds.values())
        return g, detect_deadlock(g), conds

    def test_report_contains_verdict_and_table(self):
        g, result, conds = self._graph()
        html = render_html_report(g, result, conds)
        assert "Deadlock detected" in html
        assert "MPI_Send(to=1)@0:2" in html
        assert "Dependency cycle" in html
        assert html.startswith("<!DOCTYPE html>")

    def test_report_without_deadlock(self):
        g = WaitForGraph.from_conditions(3, [_cond(0, [[2]])])
        result = detect_deadlock(g)
        html = render_html_report(g, result, {0: _cond(0, [[2]])})
        assert "No deadlock" in html
        assert "releasable" in html

    def test_dot_embedded_when_given(self):
        g, result, conds = self._graph()
        html = render_html_report(g, result, conds, dot_text="digraph x {}")
        assert "digraph x {}" in html


class TestSimplify:
    def test_wildcard_pattern_collapses_to_one_class(self):
        p = 8
        conds = [
            _cond(i, [[j for j in range(p) if j != i]],
                  desc=f"MPI_Recv(from=ANY)@{i}:0")
            for i in range(p)
        ]
        g = WaitForGraph.from_conditions(p, conds)
        agg = simplify(g)
        assert len(agg.nodes) == 1
        assert agg.nodes[0].members.count() == p
        assert agg.arc_count() == 1
        assert g.arc_count() == p * (p - 1)

    def test_distinct_patterns_stay_separate(self):
        conds = [
            _cond(0, [[1]], desc="MPI_Send(to=1)@0:0"),
            _cond(1, [[2]], desc="MPI_Send(to=2)@1:0"),
        ]
        agg = simplify(WaitForGraph.from_conditions(3, conds))
        assert len(agg.nodes) == 2

    def test_aggregated_dot_renders(self):
        p = 6
        conds = [
            _cond(i, [[j for j in range(p) if j != i]],
                  desc=f"MPI_Recv(from=ANY)@{i}:0")
            for i in range(p)
        ]
        agg = simplify(WaitForGraph.from_conditions(p, conds))
        dot = render_aggregated_dot(agg)
        assert "except self" in dot
        assert dot.count("->") == 1


class TestRankSet:
    def test_compression(self):
        rs = RankSet.from_ranks([0, 1, 2, 5, 7, 8])
        assert rs.ranges == ((0, 2), (5, 5), (7, 8))
        assert rs.count() == 6
        assert rs.describe() == "0-2,5,7-8"
        assert 1 in rs and 6 not in rs

    def test_empty(self):
        rs = RankSet.from_ranks([])
        assert rs.count() == 0 and rs.describe() == ""

    def test_duplicates_collapse(self):
        assert RankSet.from_ranks([3, 3, 3]).ranges == ((3, 3),)
