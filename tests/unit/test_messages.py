"""Message records: refs, wire sizes, immutability."""
import dataclasses

import pytest

from repro.core.messages import (
    AckConsistentState,
    CollectiveAck,
    CollectiveReady,
    NewOpMsg,
    P2PWait,
    PassSend,
    Ping,
    Pong,
    RankWaitInfo,
    RecvActive,
    RecvActiveAck,
    RequestConsistentState,
    RequestWaits,
    WaitInfoMsg,
)
from repro.mpi.constants import OpKind


def test_pass_send_ref():
    msg = PassSend(send_rank=3, send_ts=7, comm_id=0, dest=5, tag=2,
                   nbytes=64)
    assert msg.send_ref == (3, 7)


def test_recv_active_refs_and_probe_flag():
    msg = RecvActive(send_rank=1, send_ts=2, recv_rank=3, recv_ts=4)
    assert msg.send_ref == (1, 2)
    assert msg.recv_ref == (3, 4)
    assert not msg.probe
    probe = RecvActive(send_rank=1, send_ts=2, recv_rank=3, recv_ts=4,
                       probe=True)
    assert probe.probe


def test_messages_are_frozen():
    msg = RecvActiveAck(recv_rank=0, recv_ts=0)
    with pytest.raises(dataclasses.FrozenInstanceError):
        msg.recv_rank = 5  # type: ignore[misc]


def test_fixed_wire_sizes_positive():
    for msg_cls, kwargs in (
        (PassSend, dict(send_rank=0, send_ts=0, comm_id=0, dest=1, tag=0,
                        nbytes=0)),
        (RecvActive, dict(send_rank=0, send_ts=0, recv_rank=1, recv_ts=0)),
        (RecvActiveAck, dict(recv_rank=0, recv_ts=0)),
        (CollectiveReady, dict(comm_id=0, wave_index=0,
                               kind=OpKind.BARRIER, root=None, count=1)),
        (CollectiveAck, dict(comm_id=0, wave_index=0)),
        (RequestConsistentState, dict(detection_id=0)),
        (Ping, dict(detection_id=0, remaining=1)),
        (Pong, dict(detection_id=0, remaining=0)),
        (AckConsistentState, dict(detection_id=0)),
        (RequestWaits, dict(detection_id=0)),
    ):
        msg = msg_cls(**kwargs)
        assert msg.wire_size > 0, msg_cls


def test_wait_info_wire_size_scales_with_or_targets():
    small = WaitInfoMsg(
        detection_id=0,
        node_id=1,
        infos=(
            RankWaitInfo(rank=0, op_description="op",
                         entries=(P2PWait((1,), "r"),)),
        ),
    )
    big = WaitInfoMsg(
        detection_id=0,
        node_id=1,
        infos=(
            RankWaitInfo(
                rank=0,
                op_description="op",
                entries=(P2PWait(tuple(range(100)), "r"),),
            ),
        ),
    )
    assert big.wire_size > small.wire_size


def test_new_op_wraps_operation():
    from repro.mpi.ops import Operation

    op = Operation(kind=OpKind.BARRIER, rank=2, ts=5)
    msg = NewOpMsg(op)
    assert msg.op.ref == (2, 5)
