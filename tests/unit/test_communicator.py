"""Communicator model: groups, registry, dup/split semantics."""
import pytest

from repro.mpi.communicator import Communicator, CommRegistry
from repro.mpi.constants import WORLD_COMM_ID


def test_world_communicator():
    reg = CommRegistry(4)
    assert reg.world.comm_id == WORLD_COMM_ID
    assert reg.world.group == (0, 1, 2, 3)
    assert reg.world_size == 4
    assert WORLD_COMM_ID in reg


def test_registry_rejects_empty_world():
    with pytest.raises(ValueError):
        CommRegistry(0)


def test_rank_translation():
    comm = Communicator(5, (3, 1, 7))
    assert comm.local_rank(1) == 1
    assert comm.local_rank(7) == 2
    assert comm.world_rank(0) == 3
    assert comm.contains(7)
    assert not comm.contains(2)
    with pytest.raises(KeyError):
        comm.local_rank(4)


def test_duplicate_ranks_rejected():
    with pytest.raises(ValueError):
        Communicator(1, (0, 1, 0))


def test_dup_preserves_group_new_identity():
    reg = CommRegistry(3)
    dup = reg.dup(WORLD_COMM_ID)
    assert dup.group == reg.world.group
    assert dup.comm_id != WORLD_COMM_ID
    assert reg.get(dup.comm_id) is dup


def test_split_by_color():
    reg = CommRegistry(6)
    colors = {0: 0, 1: 1, 2: 0, 3: 1, 4: 0, 5: None}
    result = reg.split(WORLD_COMM_ID, colors)
    assert result[0].group == (0, 2, 4)
    assert result[1].group == (1, 3)
    assert result[0] is result[2] is result[4]
    assert result[5] is None  # MPI_UNDEFINED


def test_split_requires_all_members():
    reg = CommRegistry(3)
    with pytest.raises(ValueError):
        reg.split(WORLD_COMM_ID, {0: 0, 1: 0})


def test_create_validates_world_membership():
    reg = CommRegistry(2)
    with pytest.raises(ValueError):
        reg.create([0, 5])


def test_unknown_communicator():
    reg = CommRegistry(2)
    with pytest.raises(KeyError):
        reg.get(99)


def test_subgroup_communicator_ids_are_fresh():
    reg = CommRegistry(4)
    a = reg.create([0, 1])
    b = reg.create([2, 3])
    assert a.comm_id != b.comm_id
    assert set(reg.all_ids()) == {WORLD_COMM_ID, a.comm_id, b.comm_id}
