"""Partial-order reduction: state-count wins without lost deadlocks."""
from repro.analysis import (
    Verdict,
    explore_extraction,
    extract_programs,
    replay_witness,
)
from repro.workloads import (
    ping_pong_pairs_programs,
    wildcard_deadlock_programs,
    wildcard_master_worker_programs,
    wildcard_stress_programs,
)


def _explore(programs, **kwargs):
    return explore_extraction(extract_programs(list(programs)), **kwargs)


# ----------------------------------------------------------------------
# Reduction strength
# ----------------------------------------------------------------------

class TestReduction:
    def test_directed_pairs_naive_blows_up_por_stays_tiny(self):
        # Three independent ping-pong pairs: interleavings multiply for
        # the naive search, but every transition is POR-safe, so the
        # reduced search is a single chain.
        programs = ping_pong_pairs_programs(6, rounds=3)
        ext = extract_programs(programs)
        naive = explore_extraction(ext, por=False, max_states=100_000)
        reduced = explore_extraction(ext, por=True)
        assert naive.verdict is Verdict.DEADLOCK_FREE
        assert reduced.verdict is Verdict.DEADLOCK_FREE
        assert naive.stats.states_explored > 10_000
        assert reduced.stats.states_explored < 500

    def test_wildcard_branches_are_never_pruned(self):
        # Wildcard receive executions are the branching points; POR may
        # chain deterministic transitions around them but must keep
        # every match choice.
        ext = extract_programs(wildcard_stress_programs(4, rounds=2))
        naive = explore_extraction(ext, por=False)
        reduced = explore_extraction(ext, por=True)
        assert naive.verdict is Verdict.DEADLOCK_FREE
        assert reduced.verdict is Verdict.DEADLOCK_FREE
        assert reduced.stats.states_explored < naive.stats.states_explored
        assert reduced.stats.states_pruned > 0


# ----------------------------------------------------------------------
# Soundness: reduction never hides a deadlock
# ----------------------------------------------------------------------

class TestSoundness:
    def test_por_keeps_the_only_deadlocking_matching(self):
        # Exactly one of the two wildcard matchings deadlocks; a POR
        # that pruned the wildcard branch would wrongly report
        # deadlock-free.
        ext = extract_programs(wildcard_master_worker_programs())
        reduced = explore_extraction(ext, por=True)
        assert reduced.verdict is Verdict.DEADLOCK_POSSIBLE
        outcome = replay_witness(
            wildcard_master_worker_programs(), reduced.witness
        )
        assert outcome.confirmed

    def test_por_and_naive_agree_on_verdicts(self):
        cases = [
            wildcard_master_worker_programs(),
            wildcard_deadlock_programs(4),
            wildcard_stress_programs(4, rounds=2),
            ping_pong_pairs_programs(4, rounds=2),
        ]
        for programs in cases:
            ext = extract_programs(programs)
            naive = explore_extraction(ext, por=False)
            reduced = explore_extraction(ext, por=True)
            assert naive.verdict is reduced.verdict
            assert set(naive.deadlocked) == set(reduced.deadlocked)


# ----------------------------------------------------------------------
# Acceptance: Fig. 10-style wildcard stress at 8 ranks, >= 5x
# ----------------------------------------------------------------------

class TestAcceptanceRatio:
    def test_por_plus_memo_beats_naive_by_5x_at_8_ranks(self):
        ext = extract_programs(wildcard_stress_programs(8, rounds=3))
        reduced = explore_extraction(ext, por=True)
        assert reduced.verdict is Verdict.DEADLOCK_FREE
        naive = explore_extraction(ext, por=False, max_states=300_000)
        assert naive.verdict is Verdict.DEADLOCK_FREE
        ratio = naive.stats.states_explored / reduced.stats.states_explored
        assert ratio >= 5.0
