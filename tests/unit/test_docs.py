"""The versioned-document registry (``repro.docs``)."""
import json

import pytest

from repro.docs import (
    REGISTRY,
    DocError,
    doc_header,
    format_tag,
    parse_format,
    sniff_path,
    supported_line,
    validate_doc,
)

#: Every pre-serve document family must be registered (the satellite's
#: consolidation target list), plus the serve envelope itself.
EXPECTED_FAMILIES = {
    "witness", "blame", "classify", "prove", "profile", "live",
    "lint", "verify", "stats", "figures", "serve",
}


class TestRegistry:
    def test_all_families_registered(self):
        assert EXPECTED_FAMILIES <= set(REGISTRY)

    def test_tags_are_well_formed(self):
        for name, family in REGISTRY.items():
            assert parse_format(family.tag) == (name, family.current)

    def test_doc_header_round_trips_through_validate(self):
        for name in REGISTRY:
            doc = {**doc_header(name)}
            assert validate_doc(doc, name) == (name, REGISTRY[name].current)

    def test_format_tag_matches_legacy_constants(self):
        # The registry owns the strings the subsystems used to define.
        from repro.analysis.witness import WITNESS_FORMAT
        from repro.obs.blame import BLAME_FORMAT
        from repro.obs.live import LIVE_FORMAT
        from repro.obs.prof import PROFILE_FORMAT

        assert WITNESS_FORMAT == "repro-witness/1" == format_tag("witness")
        assert BLAME_FORMAT == "repro-blame/1" == format_tag("blame")
        assert LIVE_FORMAT == "repro-live/1" == format_tag("live")
        assert PROFILE_FORMAT == "repro-profile/1" == format_tag("profile")


class TestParseFormat:
    @pytest.mark.parametrize(
        "tag,expected",
        [
            ("repro-live/1", ("live", 1)),
            ("repro-serve/12", ("serve", 12)),
            ("repro-a-b/3", ("a-b", 3)),
            ("repro-live", None),
            ("live/1", None),
            ("repro-live/x", None),
            ("", None),
            (None, None),
            (7, None),
        ],
    )
    def test_parsing(self, tag, expected):
        assert parse_format(tag) == expected


class TestValidateDoc:
    def test_missing_format_tag(self):
        with pytest.raises(DocError, match="no 'format' tag"):
            validate_doc({"kind": "snapshot"}, "live")

    def test_non_object(self):
        with pytest.raises(DocError, match="not a JSON object"):
            validate_doc([1, 2], "live")

    def test_unknown_family(self):
        with pytest.raises(DocError, match="unknown document family"):
            validate_doc({"format": "repro-nope/1"})

    def test_unknown_version_names_the_supported_one(self):
        with pytest.raises(
            DocError,
            match=r"unsupported repro-live/9 version "
            r"\(supported: repro-live/1\)",
        ):
            validate_doc({"format": "repro-live/9"}, "live")

    def test_wrong_family_for_expectation(self):
        with pytest.raises(DocError, match="expected a repro-live/1"):
            validate_doc({"format": "repro-blame/1"}, "live")

    def test_location_prefix(self):
        with pytest.raises(DocError, match=r"^feed\.jsonl:3: "):
            validate_doc(
                {"format": "repro-live/9"},
                "live",
                path="feed.jsonl",
                lineno=3,
            )

    def test_check_keys(self):
        with pytest.raises(DocError, match="missing key"):
            validate_doc(
                {"format": "repro-witness/1"}, "witness", check_keys=True
            )
        validate_doc(
            {"format": "repro-witness/1", "num_ranks": 2, "schedule": []},
            "witness",
            check_keys=True,
        )

    def test_supported_line(self):
        assert supported_line("live") == "supported: repro-live/1"


class TestSniffPath:
    def test_jsonl_feed(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text(
            '\n{"format": "repro-live/1", "kind": "header"}\n'
            '{"format": "repro-live/1", "kind": "snapshot"}\n'
        )
        assert sniff_path(str(path)) == ("live", 1, 2)

    def test_unknown_version_still_sniffs(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text('{"format": "repro-live/9"}\n')
        assert sniff_path(str(path)) == ("live", 9, 1)

    def test_whole_document(self, tmp_path):
        path = tmp_path / "blame.json"
        path.write_text(
            json.dumps({"format": "repro-blame/1", "root_causes": []}, indent=2)
        )
        assert sniff_path(str(path)) == ("blame", 1, 1)

    def test_untagged_inputs_return_none(self, tmp_path):
        chrome = tmp_path / "run.trace.json"
        chrome.write_text(json.dumps({"traceEvents": [], "repro": {}}))
        assert sniff_path(str(chrome)) is None
        raw = tmp_path / "events.jsonl"
        raw.write_text('{"ph": "i", "name": "x"}\n')
        assert sniff_path(str(raw)) is None
        assert sniff_path(str(tmp_path / "missing.json")) is None
        junk = tmp_path / "junk.txt"
        junk.write_text("not json at all")
        assert sniff_path(str(junk)) is None
