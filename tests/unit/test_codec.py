"""The cross-process wire codec round-trips every protocol message.

The sharded backend ships all first-layer traffic through
``encode_message``/``decode_message``; a field lost here would
silently change matching or wait-state decisions in a worker, so
every dataclass in ``repro.core.messages`` must survive the trip
bit-for-bit (dataclass equality).
"""
import pytest

from repro.core.messages import (
    AckConsistentState,
    CollectiveAck,
    CollectiveReady,
    CollectiveWait,
    NewOpMsg,
    P2PWait,
    PassSend,
    Ping,
    Pong,
    RankDoneMsg,
    RankWaitInfo,
    RecvActive,
    RecvActiveAck,
    RequestConsistentState,
    RequestWaits,
    WaitInfoMsg,
)
from repro.mpi.blocking import BlockingSemantics
from repro.mpi.ops import OpKind
from repro.mpi.serialize import (
    decode_message,
    encode_message,
    message_context,
)
from repro.runtime import run_programs
from repro.util.errors import TraceError


def _roundtrip(msg):
    tag, payload = encode_message(msg)
    assert isinstance(tag, str)
    return decode_message((tag, payload))


SIMPLE_MESSAGES = [
    RankDoneMsg(rank=3),
    PassSend(send_rank=1, send_ts=4, comm_id=0, dest=2, tag=7, nbytes=64),
    RecvActive(send_rank=1, send_ts=4, recv_rank=2, recv_ts=9, probe=False),
    RecvActive(send_rank=1, send_ts=4, recv_rank=2, recv_ts=9, probe=True),
    RecvActiveAck(recv_rank=2, recv_ts=9, probe=False),
    CollectiveReady(
        comm_id=0, wave_index=2, kind=OpKind.REDUCE, root=1, count=4
    ),
    CollectiveReady(
        comm_id=1, wave_index=0, kind=OpKind.BARRIER, root=None, count=8
    ),
    CollectiveAck(comm_id=0, wave_index=2),
    RequestConsistentState(detection_id=5),
    Ping(detection_id=5, remaining=3),
    Pong(detection_id=5, remaining=0),
    AckConsistentState(detection_id=5, count=2),
    RequestWaits(detection_id=5),
]


@pytest.mark.parametrize(
    "msg", SIMPLE_MESSAGES, ids=lambda m: type(m).__name__
)
def test_simple_messages_roundtrip(msg):
    assert _roundtrip(msg) == msg


def test_wait_info_roundtrips_with_nested_entries():
    msg = WaitInfoMsg(
        detection_id=7,
        node_id=12,
        infos=(
            RankWaitInfo(
                rank=0,
                op_description="MPI_Recv(src=1)",
                entries=(P2PWait(or_targets=(1, 3), reason="recv"),),
                or_semantics=True,
            ),
            RankWaitInfo(
                rank=1,
                op_description="MPI_Barrier",
                entries=(CollectiveWait(comm_id=0, wave_index=4),),
            ),
        ),
        unblocked=(2,),
        finished=(3, 4),
    )
    assert _roundtrip(msg) == msg


def test_new_op_roundtrips_every_traced_operation():
    """Every operation a real run produces — sends (all modes),
    wildcard receives, nonblocking ops, collectives, finalize —
    survives the wire unchanged."""
    from repro.workloads.randomgen import safe_program_set

    gen = safe_program_set(
        p=3, events=12, seed=11, allow_wildcards=True,
        allow_collectives=True,
    )
    res = run_programs(
        gen.programs(), semantics=BlockingSemantics.relaxed(), seed=11
    )
    total = 0
    for rank in range(3):
        for op in res.matched.trace.sequence(rank):
            assert _roundtrip(NewOpMsg(op)) == NewOpMsg(op)
            total += 1
    assert total > 10


@pytest.mark.parametrize(
    "msg", SIMPLE_MESSAGES, ids=lambda m: type(m).__name__
)
def test_context_rides_the_wire_unchanged(msg):
    """A trace context is carried exactly and does not perturb the
    decoded message."""
    ctx = (7, 3, 42, 0)
    data = encode_message(msg, ctx)
    assert len(data) == 3
    assert message_context(data) == ctx
    assert decode_message(data) == msg


@pytest.mark.parametrize(
    "msg", SIMPLE_MESSAGES, ids=lambda m: type(m).__name__
)
def test_context_free_wire_format_is_unchanged(msg):
    """Without a context the wire tuple is the exact two-element PR 5
    format — enabling tracing later cannot move equivalence baselines."""
    data = encode_message(msg)
    assert len(data) == 2
    assert data == encode_message(msg, None)
    assert message_context(data) is None


def test_unknown_message_type_is_rejected():
    with pytest.raises(TraceError, match="no wire codec"):
        encode_message(object())


def test_unknown_tag_is_rejected():
    with pytest.raises(TraceError, match="no wire codec"):
        decode_message(("Bogus", ()))
