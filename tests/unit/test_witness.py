"""Witness schedules: serialization, replay, and divergence handling."""
import dataclasses
import json

import pytest

from repro.analysis import (
    Verdict,
    WitnessSchedule,
    explore_extraction,
    extract_programs,
    replay_witness,
)
from repro.runtime.scheduler import ScriptedScheduler
from repro.util.errors import ReproError
from repro.workloads import wildcard_master_worker_programs


def _master_worker_witness():
    ext = extract_programs(wildcard_master_worker_programs())
    result = explore_extraction(ext)
    assert result.verdict is Verdict.DEADLOCK_POSSIBLE
    return result.witness


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------

class TestSerialization:
    def test_json_roundtrip(self):
        witness = _master_worker_witness()
        clone = WitnessSchedule.from_json_dict(witness.to_json_dict())
        assert clone == witness

    def test_save_load_roundtrip(self, tmp_path):
        witness = _master_worker_witness()
        path = tmp_path / "mw.witness.json"
        witness.save(path)
        assert WitnessSchedule.load(path) == witness

    def test_on_disk_shape_is_plain_json(self, tmp_path):
        witness = _master_worker_witness()
        path = tmp_path / "mw.witness.json"
        witness.save(path)
        data = json.loads(path.read_text())
        assert data["format"] == "repro-witness/1"
        assert data["num_ranks"] == 3
        assert data["schedule"] == [0, 1, 0, 1, 2]
        assert data["pinnings"] == [{"rank": 0, "ts": 0, "source": 1}]

    def test_unknown_format_is_rejected(self):
        witness = _master_worker_witness()
        data = witness.to_json_dict()
        data["format"] = "repro-witness/99"
        with pytest.raises(
            ReproError, match=r"unsupported repro-witness/99 version"
        ):
            WitnessSchedule.from_json_dict(data)

    def test_wrong_family_is_rejected(self):
        data = _master_worker_witness().to_json_dict()
        data["format"] = "repro-blame/1"
        with pytest.raises(ReproError, match="expected a repro-witness/1"):
            WitnessSchedule.from_json_dict(data)


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------

class TestReplay:
    def test_witness_replays_to_confirmed_deadlock(self):
        witness = _master_worker_witness()
        outcome = replay_witness(
            wildcard_master_worker_programs(), witness
        )
        assert outcome.confirmed
        assert outcome.run is not None and outcome.run.deadlocked
        assert sorted(outcome.runtime_deadlocked) == [0, 2]
        assert outcome.cycles_match
        assert outcome.reason == ""

    def test_replay_is_deterministic(self):
        witness = _master_worker_witness()
        a = replay_witness(wildcard_master_worker_programs(), witness)
        b = replay_witness(wildcard_master_worker_programs(), witness)
        assert a.confirmed and b.confirmed
        assert a.runtime_deadlocked == b.runtime_deadlocked
        assert a.runtime_cycle == b.runtime_cycle

    def test_rank_count_mismatch_is_an_error(self):
        witness = _master_worker_witness()
        with pytest.raises(ReproError, match="witness is for 3 ranks"):
            replay_witness(wildcard_master_worker_programs()[:2], witness)

    def test_wrong_pinning_does_not_confirm(self):
        # Pinning the wildcard to rank 2 picks the benign matching: the
        # run completes, so the replay must report "not confirmed"
        # rather than pretending the witness reproduced anything.
        witness = _master_worker_witness()
        benign = dataclasses.replace(
            witness,
            pinnings={(0, 0): 2},
            schedule=[],  # free schedule; the pinning decides the run
        )
        outcome = replay_witness(wildcard_master_worker_programs(), benign)
        assert not outcome.confirmed
        assert "completed without deadlocking" in outcome.reason

    def test_diverging_schedule_reports_replay_failure(self):
        witness = _master_worker_witness()
        # The master blocks in its wildcard receive after one issue, so
        # scheduling it three times in a row diverges from any run the
        # engine can produce.
        broken = dataclasses.replace(witness, schedule=[0, 0, 0, 1, 2])
        outcome = replay_witness(wildcard_master_worker_programs(), broken)
        assert not outcome.confirmed
        assert outcome.run is None
        assert outcome.reason.startswith("replay failed:")


# ----------------------------------------------------------------------
# ScriptedScheduler
# ----------------------------------------------------------------------

class TestScriptedScheduler:
    def test_follows_the_script_exactly(self):
        sched = ScriptedScheduler([0, 1, 0])
        assert sched.pick([0, 1]) == 0
        assert sched.pick([0, 1]) == 1
        # Rank 1's scheduled issues are spent, so it drains first; the
        # remaining scheduled entry then drives rank 0.
        assert sched.pick([0, 1]) == 1
        assert sched.pick([0]) == 0
        assert sched.exhausted

    def test_drains_exhausted_ranks_first(self):
        # Rank 2 has no scheduled issues: its terminating resume must
        # not consume a scheduled entry.
        sched = ScriptedScheduler([0, 1])
        assert sched.pick([0, 2]) == 2
        assert sched.pick([0, 1]) == 0
        assert sched.pick([1]) == 1

    def test_diverging_rank_fails_loudly(self):
        # Schedule expects rank 2 next, but only rank 0 (which still has
        # scheduled issues) is runnable: that is a divergence.
        sched = ScriptedScheduler([2, 0])
        with pytest.raises(ReproError, match="diverged"):
            sched.pick([0])
