"""Unified timeline: aligning wall and simulated clock domains."""
import pytest

from repro.obs.events import (
    PID_ENGINE,
    PID_TBON,
    PID_WAIT,
    TraceEvent,
)
from repro.obs.timeline import UnifiedTimeline


def _ev(name, ts, pid, *, dur=None, ph="i", tid=0):
    return TraceEvent(
        name=name, cat="t", ph=ph, ts=ts, pid=pid, tid=tid, dur=dur
    )


def _mixed_events():
    return [
        _ev("a", 1000.0, PID_ENGINE),
        _ev("b", 2000.0, PID_ENGINE),
        _ev("c", 50.0, PID_TBON),
        _ev("d", 60.0, PID_TBON),
        _ev("e", 55.0, PID_WAIT, dur=15.0, ph="X"),
    ]


class TestPipeline:
    def test_domains_concatenate_in_dataflow_order(self):
        tl = UnifiedTimeline(_mixed_events(), mode="pipeline")
        rows = tl.summary()
        assert [r["clock"] for r in rows] == ["wall", "simulated"]
        wall, sim = rows
        assert wall["offset_us"] == 0.0
        assert wall["span_us"] == 1000.0
        # The simulated domain starts where the wall domain ends.
        assert sim["offset_us"] == 1000.0
        # pid 2 (TBON) and pid 3 (wait states) share the simulated
        # clock: one domain, one extent 50..70 (the X event has dur).
        assert sorted(sim["pids"]) == [PID_TBON, PID_WAIT]
        assert sim["span_us"] == 20.0
        assert tl.total_span_us == 1020.0

    def test_unified_ts_rebases_each_domain(self):
        tl = UnifiedTimeline(_mixed_events(), mode="pipeline")
        by_name = {e.name: e for e in _mixed_events()}
        assert tl.unified_ts(by_name["a"]) == 0.0
        assert tl.unified_ts(by_name["b"]) == 1000.0
        assert tl.unified_ts(by_name["c"]) == 1000.0
        assert tl.unified_ts(by_name["e"]) == 1005.0

    def test_iter_unified_is_sorted(self):
        tl = UnifiedTimeline(_mixed_events(), mode="pipeline")
        stamps = [ts for ts, _ in tl.iter_unified()]
        assert stamps == sorted(stamps)


class TestOverlay:
    def test_all_domains_anchor_at_zero(self):
        tl = UnifiedTimeline(_mixed_events(), mode="overlay")
        for row in tl.summary():
            assert row["offset_us"] == 0.0
        # Overlay span is the longest single domain.
        assert tl.total_span_us == 1000.0

    def test_simulated_events_rebase_to_zero(self):
        tl = UnifiedTimeline(_mixed_events(), mode="overlay")
        by_name = {e.name: e for e in _mixed_events()}
        assert tl.unified_ts(by_name["c"]) == 0.0
        assert tl.unified_ts(by_name["e"]) == 5.0


class TestEdges:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            UnifiedTimeline([], mode="sideways")

    def test_metadata_events_are_ignored(self):
        events = [
            _ev("process_name", 0.0, PID_ENGINE, ph="M"),
            _ev("a", 10.0, PID_ENGINE),
        ]
        tl = UnifiedTimeline(events)
        assert len(tl.events) == 1
        assert tl.summary()[0]["events"] == 1

    def test_empty_timeline(self):
        tl = UnifiedTimeline([])
        assert tl.summary() == []
        assert tl.total_span_us == 0.0

    def test_unknown_pid_gets_its_own_domain(self):
        events = [_ev("a", 5.0, 7), _ev("b", 1.0, PID_ENGINE)]
        tl = UnifiedTimeline(events)
        clocks = [r["clock"] for r in tl.summary()]
        assert "wall" in clocks and "pid7" in clocks

    def test_shard_pids_join_the_wall_domain(self):
        # shard-worker events are clock-reconciled at merge, so their
        # pids (>= PID_SHARD_BASE) align on the wall axis
        events = [_ev("a", 5.0, 12), _ev("b", 1.0, PID_ENGINE)]
        tl = UnifiedTimeline(events)
        assert [r["clock"] for r in tl.summary()] == ["wall"]
