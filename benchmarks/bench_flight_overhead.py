"""Flight-recorder overhead: ON by default vs opted out.

The flight recorder rides every hot path of the engine (issue/block/
resume ring stores) and the first-layer nodes. It is ON by default,
so its *tracking* cost must stay within the same < 5% parity bound the
observability layer promises. Rendering the tails into a deadlock
report is deliberately not part of that bound: it happens once, at
detection time, under the output phase — forensic work, not tracking.

Two paired series, both asserted against the parity bound:

* **engine** — ``run_programs`` with the default ``FlightRecorder``
  vs an explicit ``NullFlightRecorder`` opt-out.
* **detect** — ``DistributedDeadlockDetector`` with outputs disabled
  (the tracking path the scalability benches measure), ON vs opted
  out.

Methodology: N single-run samples per variant, with the ON/OFF
execution order alternating every round (a fixed order hands
whichever variant runs first a systematic cache/frequency bias) and
the garbage collector parked for the duration. Each variant is scored
by the mean of its five lowest samples: noise only ever adds time, so
the low tail converges on the true cost, while the raw minimum is an
extreme statistic whose luck-of-the-draw variance exceeds the effect
being measured. Parity is measured at the paper's base scale (128
processes; 512 in full mode): the bound is a per-operation throughput
claim, and below ~10 ms of runtime constant startup costs and timer
granularity drown it.
"""
import gc
import time

from repro.core.detector import DistributedDeadlockDetector
from repro.mpi.blocking import BlockingSemantics
from repro.obs.flight import FlightRecorder, NullFlightRecorder
from repro.runtime import run_programs
from repro.workloads import lammps_skeleton_programs

from _util import fmt_table, scale_points, write_result

PROCESS_COUNTS = scale_points(default=(128,), full=(128, 512))
ROUNDS = 30
#: The observability parity bound (fractional) the flight recorder
#: must stay within while ON by default.
PARITY_BOUND = 0.05


def _run_once(p, flight) -> None:
    run_programs(
        lammps_skeleton_programs(p, healthy_iterations=2),
        semantics=BlockingSemantics.relaxed(),
        seed=1,
        flight=flight,
    )


def _detect_once(matched, flight) -> None:
    DistributedDeadlockDetector(
        matched, fan_in=4, seed=0, flight=flight, generate_outputs=False
    ).run()


def _sample(measure, factory) -> float:
    """One timed sample: a single run."""
    start = time.perf_counter()
    measure(factory())
    return time.perf_counter() - start


def _low_tail(samples) -> float:
    """Mean of the five lowest samples: the noise-robust floor."""
    return sum(sorted(samples)[:5]) / 5


def _paired(measure):
    """Low-tail ON and OFF times over ROUNDS, order alternating."""
    pairs = [("on", FlightRecorder), ("off", NullFlightRecorder)]
    samples = {"on": [], "off": []}
    measure(FlightRecorder())  # warm caches off the clock
    for i in range(ROUNDS):
        for label, factory in pairs if i % 2 == 0 else pairs[::-1]:
            samples[label].append(_sample(measure, factory))
    floor_off = _low_tail(samples["off"])
    floor_on = _low_tail(samples["on"])
    return floor_off, floor_on, floor_on / floor_off


def test_flight_overhead_within_parity_bound():
    rows = []
    data = {}
    worst_ratio = 0.0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for p in PROCESS_COUNTS:
            res = run_programs(
                lammps_skeleton_programs(p, healthy_iterations=2),
                semantics=BlockingSemantics.relaxed(),
                seed=1,
            )
            series = {
                "engine": _paired(lambda fl: _run_once(p, fl)),
                "detect": _paired(lambda fl: _detect_once(res.matched, fl)),
            }
            data[str(p)] = {}
            for path, (best_off, best_on, ratio) in series.items():
                worst_ratio = max(worst_ratio, ratio)
                rows.append(
                    [p, path, f"{best_off * 1e3:.3f}",
                     f"{best_on * 1e3:.3f}", f"{ratio:.3f}x"]
                )
                data[str(p)][path] = {
                    "best_off_s": best_off,
                    "best_on_s": best_on,
                    "ratio": ratio,
                }
    finally:
        if gc_was_enabled:
            gc.enable()
    write_result(
        "flight_overhead",
        fmt_table(["procs", "path", "off_ms", "on_ms", "ratio"], rows),
        data={
            "params": {
                "fan_in": 4,
                "rounds": ROUNDS,
                "procs": list(PROCESS_COUNTS),
            },
            "parity_bound": PARITY_BOUND,
            "series": data,
        },
    )
    assert worst_ratio < 1.0 + PARITY_BOUND, (
        f"flight recorder overhead {worst_ratio:.3f}x exceeds the "
        f"{PARITY_BOUND:.0%} parity bound"
    )
