"""Shared helpers for the benchmark harness.

Every bench prints the series it regenerates (the rows the paper's
figure/table reports) and also appends them to ``results/`` as plain
text, so EXPERIMENTS.md can quote measured numbers.

Set ``REPRO_FULL_SCALE=1`` to extend sweeps to the paper's maximal
scales (4,096 processes for Figures 9/10); default sweeps stay small
enough for quick CI runs.
"""
from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, List, Mapping, Optional, Sequence

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL_SCALE", "") == "1"


def scale_points(default: Sequence[int], full: Sequence[int]) -> List[int]:
    return list(full if full_scale() else default)


def write_bench_json(name: str, data: Mapping[str, object]) -> Path:
    """Emit a bench's results as machine-readable ``BENCH_<name>.json``.

    The repo accumulates these as a perf trajectory: each payload
    carries the bench name, its parameters, and the measured series
    (for detection benches, the phase breakdown from the
    ``repro.obs`` metrics registry).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {"bench": name, "full_scale": full_scale(), **data}
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
    )
    print(f"[{name}] wrote {path.name}")
    return path


def write_result(
    name: str,
    lines: Iterable[str],
    data: Optional[Mapping[str, object]] = None,
) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    text = "\n".join(lines) + "\n"
    path.write_text(text)
    print(f"\n[{name}]")
    print(text)
    if data is not None:
        write_bench_json(name, data)
    return path


def fmt_table(header: Sequence[str], rows: Iterable[Sequence[object]]) -> List[str]:
    widths = [max(10, len(h)) for h in header]
    out = [
        " | ".join(h.rjust(w) for h, w in zip(header, widths)),
    ]
    out.append("-+-".join("-" * w for w in widths))
    for row in rows:
        out.append(
            " | ".join(str(c).rjust(w) for c, w in zip(row, widths))
        )
    return out
