#!/usr/bin/env python3
"""The perf-regression gate over ``results/BENCH_trajectory.json``.

``aggregate_trajectory.py`` folds every ``BENCH_*.json`` payload into
one trajectory artifact; this script pins the floors the repo's perf
story rests on and fails CI when a payload regresses past one — or
silently disappears. The floors deliberately sit below the measured
values (2.85x, ~12-17x, ~1.03x, ~475x at the time of writing) so
machine noise doesn't flap the gate while real regressions still trip
it.

Gated claims:

* **parallel_shards** — modeled detection-latency speedup at 4 shards,
  p=256 must stay >= 1.8x (the sharded backend's reason to exist);
* **classify_fastpath** — the decidable-fragment fast path must keep
  >= 10x speedup over the explorer at the last (largest) cell of every
  workload family;
* **flight_overhead** — the always-on flight recorder stays within the
  5% parity bound on every measured path;
* **obs_sharded_overhead** — cross-shard tracing + the BSP round
  profiler stay within the same 5% bound at p=256, s=8;
* **live_overhead** — the live health-telemetry layer (engine/backend
  snapshot ticks + health grading) stays within the same 5% bound at
  p=256, s=8;
* **por_reduction** — partial-order reduction keeps >= 5x state-count
  reduction on the ping-pong-pairs cell;
* **prove** — one ``PROVED-ALL-P`` certificate must stay >= 5x
  cheaper than the equivalent 8-size ``repro verify`` sweep.

Run:  python benchmarks/check_trajectory.py [trajectory.json]
"""
from __future__ import annotations

import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
DEFAULT_TRAJECTORY = RESULTS_DIR / "BENCH_trajectory.json"

#: Scored floors/bounds. Keep in sync with the constants in the
#: individual benches (each bench also self-gates; this gate catches
#: regressions across runs and *missing* payloads).
SHARDS_SPEEDUP_FLOOR = 1.8
FASTPATH_SPEEDUP_FLOOR = 10.0
OVERHEAD_PARITY_BOUND = 0.05
POR_REDUCTION_FLOOR = 5.0
PROVE_SPEEDUP_FLOOR = 5.0


def _check_parallel_shards(payload: dict) -> list:
    claim = payload.get("claim", {})
    speedup = float(claim.get("modeled_speedup", 0.0))
    if speedup < SHARDS_SPEEDUP_FLOOR:
        return [
            f"parallel_shards: modeled speedup {speedup:.2f}x at "
            f"{claim.get('shards')} shards, p={claim.get('p')} is below "
            f"the {SHARDS_SPEEDUP_FLOOR}x floor"
        ]
    return []


def _check_classify_fastpath(payload: dict) -> list:
    problems = []
    series = payload.get("series", {})
    if not series:
        return ["classify_fastpath: payload has no series"]
    for family in sorted(series):
        cells = series[family]
        if not cells:
            problems.append(f"classify_fastpath: family {family} is empty")
            continue
        last = cells[-1]
        speedup = float(last.get("speedup", 0.0))
        if speedup < FASTPATH_SPEEDUP_FLOOR:
            problems.append(
                f"classify_fastpath: {family} p={last.get('p')} speedup "
                f"{speedup:.1f}x is below the "
                f"{FASTPATH_SPEEDUP_FLOOR}x floor"
            )
    return problems


def _check_flight_overhead(payload: dict) -> list:
    problems = []
    bound = 1.0 + OVERHEAD_PARITY_BOUND
    series = payload.get("series", {})
    if not series:
        return ["flight_overhead: payload has no series"]
    for p in sorted(series):
        for path in sorted(series[p]):
            ratio = float(series[p][path].get("ratio", 0.0))
            if ratio >= bound:
                problems.append(
                    f"flight_overhead: {path} at p={p} ratio "
                    f"{ratio:.3f}x exceeds the {bound:.2f}x bound"
                )
    return problems


def _check_obs_sharded_overhead(payload: dict) -> list:
    claim = payload.get("claim", {})
    ratio = float(claim.get("ratio", 0.0))
    bound = 1.0 + OVERHEAD_PARITY_BOUND
    if not ratio:
        return ["obs_sharded_overhead: payload has no claim ratio"]
    if ratio >= bound:
        return [
            f"obs_sharded_overhead: tracing overhead {ratio:.3f}x at "
            f"p={claim.get('p')}, s={claim.get('shards')} exceeds the "
            f"{bound:.2f}x bound"
        ]
    return []


def _check_live_overhead(payload: dict) -> list:
    claim = payload.get("claim", {})
    ratio = float(claim.get("ratio", 0.0))
    bound = 1.0 + OVERHEAD_PARITY_BOUND
    if not ratio:
        return ["live_overhead: payload has no claim ratio"]
    if ratio >= bound:
        return [
            f"live_overhead: telemetry overhead {ratio:.3f}x at "
            f"p={claim.get('p')}, s={claim.get('shards')} exceeds the "
            f"{bound:.2f}x bound"
        ]
    return []


def _check_por_reduction(payload: dict) -> list:
    claim = payload.get("claim", {})
    ratio = float(claim.get("ratio", 0.0))
    if ratio < POR_REDUCTION_FLOOR:
        return [
            f"por_reduction: state reduction {ratio:.1f}x on "
            f"{claim.get('workload')} is below the "
            f"{POR_REDUCTION_FLOOR}x floor"
        ]
    return []


def _check_prove(payload: dict) -> list:
    claim = payload.get("claim", {})
    speedup = float(claim.get("speedup", 0.0))
    if speedup < PROVE_SPEEDUP_FLOOR:
        return [
            f"prove: certificate speedup {speedup:.1f}x over the "
            f"{len(claim.get('sweep_sizes', []))}-size verify sweep is "
            f"below the {PROVE_SPEEDUP_FLOOR}x floor"
        ]
    return []


#: bench name -> checker. Every entry is REQUIRED: a missing payload
#: is itself a gate failure (a deleted bench must delete its gate).
CHECKS = {
    "parallel_shards": _check_parallel_shards,
    "classify_fastpath": _check_classify_fastpath,
    "flight_overhead": _check_flight_overhead,
    "obs_sharded_overhead": _check_obs_sharded_overhead,
    "live_overhead": _check_live_overhead,
    "por_reduction": _check_por_reduction,
    "prove": _check_prove,
}


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    path = Path(argv[0]) if argv else DEFAULT_TRAJECTORY
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"cannot load trajectory {path}: {exc}", file=sys.stderr)
        return 2
    benches = doc.get("benches", {})
    problems = []
    for name, check in CHECKS.items():
        payload = benches.get(name)
        if payload is None:
            problems.append(
                f"{name}: no payload in the trajectory (run "
                f"benchmarks/bench_{name}.py, then aggregate)"
            )
            continue
        problems.extend(check(payload))
    checked = sum(1 for name in CHECKS if name in benches)
    if problems:
        print(
            f"trajectory gate: {len(problems)} regression(s) over "
            f"{checked}/{len(CHECKS)} payload(s):"
        )
        for problem in problems:
            print(f"  FAIL {problem}")
        return 1
    print(
        f"trajectory gate: all {len(CHECKS)} gated claims hold "
        f"({path.name})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
