"""Ablation: wait-for graph simplification (the paper's future work).

Section 6 proposes propagating "aggregated and simplified wait-for
information towards the root" to cut graph search time and output
size. This bench measures the implemented aggregation on the wildcard
case: plain DOT serialization time and byte size vs the aggregated
writer, across scales.
"""
import time

import pytest

from repro.core.waitstate import analyze_trace
from repro.wfg.dot import render_dot
from repro.wfg.simplify import render_aggregated_dot, simplify
from repro.workloads import build_wildcard_trace

from _util import fmt_table, scale_points, write_result

PROCESS_COUNTS = scale_points(
    default=(64, 256, 512, 1024),
    full=(64, 256, 512, 1024, 2048),
)


def test_simplify_ablation(benchmark):
    rows = []
    analyses = {
        p: analyze_trace(build_wildcard_trace(p), generate_outputs=False)
        for p in PROCESS_COUNTS
    }

    def render_largest_plain():
        a = analyses[PROCESS_COUNTS[-1]]
        return render_dot(a.graph, a.detection)

    benchmark.pedantic(render_largest_plain, rounds=1, iterations=1)

    for p in PROCESS_COUNTS:
        analysis = analyses[p]
        t0 = time.perf_counter()
        plain = render_dot(analysis.graph, analysis.detection)
        t1 = time.perf_counter()
        agg = simplify(analysis.graph)
        agg_dot = render_aggregated_dot(agg)
        t2 = time.perf_counter()
        rows.append(
            [
                p,
                analysis.graph.arc_count(),
                f"{len(plain):,}",
                f"{(t1 - t0) * 1e3:.1f}ms",
                agg.arc_count(),
                f"{len(agg_dot):,}",
                f"{(t2 - t1) * 1e3:.1f}ms",
            ]
        )
        assert agg.arc_count() == 1  # the whole storm is one class arc
        assert len(agg_dot) < len(plain) / 100

    write_result(
        "ablation_simplify",
        fmt_table(
            [
                "procs",
                "arcs",
                "plain_bytes",
                "plain_time",
                "agg_arcs",
                "agg_bytes",
                "agg_time",
            ],
            rows,
        ),
        data={
            "params": {"procs": list(PROCESS_COUNTS)},
            "header": [
                "procs", "arcs", "plain_bytes", "plain_time",
                "agg_arcs", "agg_bytes", "agg_time",
            ],
            "rows": [[str(c) for c in row] for row in rows],
        },
    )
