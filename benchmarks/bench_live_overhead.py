"""Live health telemetry overhead at the tentpole's claim scale.

``LiveMonitor`` hangs snapshot ticks off the engine's scheduler loop
(every ``live_every_steps`` steps) and off the sharded coordinator's
exchange round (every ``live_every_rounds`` rounds), grades each
window through the health rules, and keeps the documents in memory.
That whole path — sampling, health evaluation, snapshot assembly —
must hold the observability layer's <5% bound *on top of what an
observed run already costs*, at the claim scale p=256, s=8:

* **base** — observability on, no live monitor: exactly the PR 5+7
  observed configuration;
* **live** — the same run with a ``LiveMonitor`` attached to both the
  engine and the sharded backend (default cadences, in-memory feed).

Scored on the per-run critical path: engine ``process_time`` around
``run_programs`` (where the per-step tick check lives) plus the
backend's **modeled latency** (``coordinator_busy + max(shard busy)``
— robust to CI machines with fewer free cores than shards).

Methodology matches ``bench_obs_sharded_overhead``: CI drift exceeds
the effect under test, so each round runs base and live *adjacently*
(order alternating) for a paired ratio, and the scored statistic is
the smaller of the paired-ratio median and the quiet-floor min/min —
a real regression moves both, noise moves one. GC parked throughout.
"""
import gc
import statistics
import time

from repro.backend.sharded import ShardedBackend
from repro.mpi.blocking import BlockingSemantics
from repro.obs.live import LiveMonitor
from repro.obs.observer import Observer
from repro.runtime import run_programs
from repro.workloads import stress_programs

from _util import fmt_table, write_result

#: The tentpole's claim scale: 256 processes across 8 shard workers.
CLAIM_PROCS = 256
CLAIM_SHARDS = 8
#: Paired base/live rounds (each round is one adjacent pair).
ROUNDS = 20
#: The observability parity bound (fractional) the live-telemetry
#: layer must hold over an observed-but-unmonitored run.
PARITY_BOUND = 0.05
#: Default snapshot cadences (mirror AnalysisConfig defaults).
EVERY_STEPS = 2048
EVERY_ROUNDS = 8


def _run_once(live_on: bool):
    observer = Observer()
    monitor = (
        LiveMonitor(
            observer=observer,
            every_steps=EVERY_STEPS,
            every_rounds=EVERY_ROUNDS,
        )
        if live_on
        else None
    )
    t0 = time.process_time()
    res = run_programs(
        stress_programs(CLAIM_PROCS, iterations=20),
        semantics=BlockingSemantics.relaxed(),
        seed=1,
        observer=observer,
        live=monitor,
    )
    engine_s = time.process_time() - t0
    backend = ShardedBackend(shards=CLAIM_SHARDS)
    outcome = backend.run(
        res.matched, generate_outputs=False, observer=observer,
        live=monitor,
    )
    assert not outcome.has_deadlock
    if monitor is not None:
        verdict = monitor.finalize(run=res, outcome=outcome)
        assert verdict.state == "PROGRESSING"
        assert monitor.snapshots  # the ticks actually fired
    return engine_s + backend.last_timing["modeled_latency_seconds"]


def main() -> int:
    samples = {"base": [], "live": []}
    ratios = []
    _run_once(True)  # warm worker spawn + import paths off the clock
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for i in range(ROUNDS):
            order = ["base", "live"] if i % 2 == 0 else ["live", "base"]
            round_vals = {}
            for name in order:
                round_vals[name] = _run_once(name == "live")
                samples[name].append(round_vals[name])
            ratios.append(round_vals["live"] / round_vals["base"])
    finally:
        if gc_was_enabled:
            gc.enable()
    medians = {
        name: statistics.median(vals) for name, vals in samples.items()
    }
    ratio_pairs = statistics.median(ratios)
    ratio_floor = min(samples["live"]) / min(samples["base"])
    ratio = min(ratio_pairs, ratio_floor)
    lines = fmt_table(
        ["variant", "median score ms", "min score ms"],
        [
            [
                name,
                f"{medians[name] * 1e3:.3f}",
                f"{min(samples[name]) * 1e3:.3f}",
            ]
            for name in samples
        ],
    )
    lines.append("")
    lines.append(
        f"live-telemetry overhead at p={CLAIM_PROCS}, "
        f"s={CLAIM_SHARDS} (every {EVERY_STEPS} steps / "
        f"{EVERY_ROUNDS} rounds): {ratio:.3f}x "
        f"(paired-median {ratio_pairs:.3f}x over {ROUNDS} adjacent "
        f"pairs, quiet-floor {ratio_floor:.3f}x; bound: "
        f"{1.0 + PARITY_BOUND:.2f}x on engine cpu + modeled latency)"
    )
    write_result(
        "live_overhead",
        lines,
        data={
            "workload": "stress",
            "iterations": 20,
            "rounds": ROUNDS,
            "every_steps": EVERY_STEPS,
            "every_rounds": EVERY_ROUNDS,
            "parity_bound": PARITY_BOUND,
            "median_score_s": medians,
            "paired_ratios": ratios,
            "ratio_pairs": ratio_pairs,
            "ratio_floor": ratio_floor,
            "claim": {
                "p": CLAIM_PROCS,
                "shards": CLAIM_SHARDS,
                "base_s": medians["base"],
                "live_s": medians["live"],
                "ratio": ratio,
            },
        },
    )
    if ratio >= 1.0 + PARITY_BOUND:
        print(
            f"FAIL: live-telemetry overhead {ratio:.3f}x exceeds the "
            f"{PARITY_BOUND:.0%} parity bound"
        )
        return 1
    print(f"PASS: live-telemetry overhead {ratio:.3f}x < "
          f"{1.0 + PARITY_BOUND:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
