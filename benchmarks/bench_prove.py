"""One all-p certificate vs. an equivalent per-size verify sweep.

``repro prove`` certifies deadlock-freedom for *every* process count
with one symbolic extraction and one bounded confirmation window; the
pre-prover workflow spot-checks a handful of sizes by running
``repro verify`` once per size — re-reading, re-extracting, and
re-deciding the same program each time, with per-size cost growing
linearly in ``p``. This bench prices both on the same parity-exchange
workload (wildcard-free, admitted to the certificate fragment):

* **certificate** — ``prove_path`` once: classifier gate, channel
  equations, and the ascending window sweep, ending in
  ``PROVED-ALL-P`` (a claim about all p, not just the sampled ones);
* **verify sweep** — ``verify_path`` at each of the 8 spot-check
  sizes, the strongest conclusion of which is still only
  "deadlock-free at these 8 sizes".

Scored claim: the certificate costs >= 5x less wall-clock than the
8-size sweep — while making the strictly stronger claim.
"""
import gc
import tempfile
import time
from pathlib import Path

from repro.analysis import verify_path
from repro.analysis.symbolic import ProveVerdict, prove_path

from _util import fmt_table, scale_points, write_result

#: The pre-prover workflow: spot-check these process counts.
SWEEP_SIZES = scale_points(
    default=(16, 32, 48, 64, 96, 128, 192, 256),
    full=(16, 64, 128, 256, 512, 768, 1024, 2048),
)
ROUNDS = 8
SAMPLES = 3
#: Scored floor: one certificate vs. the whole sweep.
SPEEDUP_FLOOR = 5.0

WORKLOAD = f'''\
"""Parity-split neighbour exchange, {ROUNDS} rounds: safe at every p."""


def parity_rounds(rank):
    right = (rank.rank + 1) % rank.size
    left = (rank.rank - 1) % rank.size
    for _ in range({ROUNDS}):
        if rank.rank % 2 == 0:
            yield rank.send(dest=right, tag=0)
            yield rank.recv(source=left, tag=0)
        else:
            yield rank.recv(source=left, tag=0)
            yield rank.send(dest=right, tag=0)
        yield rank.allreduce(nbytes=8)
    yield rank.finalize()
'''


def _best_of(fn):
    best = None
    for _ in range(SAMPLES):
        gc.disable()
        t0 = time.perf_counter()
        out = fn()
        dt = time.perf_counter() - t0
        gc.enable()
        if best is None or dt < best[0]:
            best = (dt, out)
    return best


def _verify_sweep(path):
    reports = []
    for size in SWEEP_SIZES:
        report = verify_path(path, ranks=size)
        reports.append((size, report))
    return reports


def main():
    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "parity_rounds.py")
        Path(path).write_text(WORKLOAD)

        prove_dt, results = _best_of(lambda: prove_path(path))
        assert len(results) == 1
        result = results[0]
        assert result.verdict is ProveVerdict.PROVED_ALL_P, result.reason

        sweep_dt, reports = _best_of(lambda: _verify_sweep(path))
        per_size = []
        for size, report in reports:
            for program in report.programs:
                lin = program.result
                assert lin is not None and not lin.has_deadlock, (
                    f"sweep found a deadlock at p={size}??"
                )
            per_size.append(size)

    speedup = sweep_dt / prove_dt
    rows = [
        (
            "certificate",
            f"all p >= 2 ([2, {result.certificate.window_hi}) swept)",
            len(result.sizes_checked),
            result.linear_ops,
            f"{prove_dt * 1e3:.2f}",
        ),
        (
            "verify sweep",
            ", ".join(str(s) for s in per_size),
            len(per_size),
            "-",
            f"{sweep_dt * 1e3:.2f}",
        ),
    ]
    lines = fmt_table(
        ("strategy", "sizes covered", "runs", "linear ops", "ms"),
        rows,
    )
    ok = speedup >= SPEEDUP_FLOOR
    claim = (
        f"prove: certificate {speedup:.1f}x cheaper than the "
        f"{len(SWEEP_SIZES)}-size verify sweep "
        f"(floor {SPEEDUP_FLOOR:.0f}x) — {'OK' if ok else 'FAIL'}"
    )
    lines += ["", claim]
    write_result(
        "prove",
        lines,
        data={
            "rounds": ROUNDS,
            "samples": SAMPLES,
            "speedup_floor": SPEEDUP_FLOOR,
            "claim": {
                "speedup": speedup,
                "prove_ms": prove_dt * 1e3,
                "sweep_ms": sweep_dt * 1e3,
                "sweep_sizes": list(SWEEP_SIZES),
                "window_hi": result.certificate.window_hi,
                "sizes_checked": len(result.sizes_checked),
            },
        },
    )
    if not ok:
        raise SystemExit(f"scored claim failed: {claim}")


if __name__ == "__main__":
    main()
