"""Fragment-classifier fast path vs. full match-set exploration.

``repro verify`` routes wildcard-free program sets through the
decidable-fragment classifier and the O(n) linear matcher instead of
the state-graph explorer. This bench quantifies that routing on the
two workload shapes the fast path targets:

* **ping_pong_pairs** — directed pair ping-pong. Independent pairs
  make naive enumeration exponential; even with partial-order
  reduction the explorer walks a state chain linear in the trace but
  pays per-state hashing/copying, while the linear matcher does one
  in-place pass.
* **collective_only** — barrier/allreduce waves. Every state has one
  enabled wave, so exploration is a chain again; the linear matcher
  counts arrivals.

Both workloads classify SEQ-DETERMINISTIC, and both deciders must
agree (deadlock-free) at every scale — the bench asserts that before
timing anything.

Scored claim: >= 10x wall-clock speedup of classify+linear-match over
exploration at the largest default scale of each workload.
"""
import gc
import time

from repro.analysis.explore import explore_sequences
from repro.analysis.extract import extract_programs
from repro.analysis.symbolic import (
    Fragment,
    classify_extraction,
    decide_extraction,
)
from repro.workloads.wildcard import ping_pong_pairs_programs

from _util import fmt_table, scale_points, write_result

PROCESS_COUNTS = scale_points(default=(16, 32, 64), full=(16, 64, 256))
ROUNDS = 6
SAMPLES = 3
#: Scored speedup floor at the largest default scale, per workload.
SPEEDUP_FLOOR = 10.0


def _collective_only_programs(p, rounds=ROUNDS):
    def program(rank):
        for _ in range(rounds):
            yield rank.barrier()
            yield rank.allreduce()
        yield rank.finalize()

    return [program] * p


WORKLOADS = (
    ("ping_pong_pairs", lambda p: ping_pong_pairs_programs(p, ROUNDS)),
    ("collective_only", _collective_only_programs),
)


def _best_of(fn):
    best = None
    for _ in range(SAMPLES):
        gc.disable()
        t0 = time.perf_counter()
        out = fn()
        dt = time.perf_counter() - t0
        gc.enable()
        if best is None or dt < best[0]:
            best = (dt, out)
    return best


def _measure(name, make, p):
    ext = extract_programs(make(p))
    classification = classify_extraction(ext)
    assert classification.fragment is Fragment.SEQ_DETERMINISTIC, (
        f"{name} p={p} fell out of the fragment: {classification.reason}"
    )
    fast_dt, fast = _best_of(lambda: decide_extraction(ext))
    slow_dt, slow = _best_of(
        lambda: explore_sequences(ext.sequences, ext.comms)
    )
    assert fast is not None
    assert fast.verdict is slow.verdict, (name, p)
    assert not fast.has_deadlock, (name, p)
    assert fast.stats.states_explored == 0
    total_ops = sum(len(s) for s in ext.sequences)
    return {
        "p": p,
        "ops": total_ops,
        "fast_ms": fast_dt * 1e3,
        "explore_ms": slow_dt * 1e3,
        "states": slow.stats.states_explored,
        "speedup": slow_dt / fast_dt,
    }


def main():
    series = {}
    rows = []
    for name, make in WORKLOADS:
        cells = [_measure(name, make, p) for p in PROCESS_COUNTS]
        series[name] = cells
        for cell in cells:
            rows.append(
                (
                    name,
                    cell["p"],
                    cell["ops"],
                    f"{cell['fast_ms']:.2f}",
                    f"{cell['explore_ms']:.2f}",
                    cell["states"],
                    f"{cell['speedup']:.1f}x",
                )
            )
    lines = fmt_table(
        ("workload", "p", "ops", "fastpath ms", "explore ms",
         "states", "speedup"),
        rows,
    )
    claims = []
    for name, cells in series.items():
        top = cells[-1]
        ok = top["speedup"] >= SPEEDUP_FLOOR
        claims.append(
            f"{name}: fastpath speedup {top['speedup']:.1f}x at "
            f"p={top['p']} (floor {SPEEDUP_FLOOR:.0f}x) — "
            f"{'OK' if ok else 'FAIL'}"
        )
    lines += [""] + claims
    write_result(
        "classify_fastpath",
        lines,
        data={
            "rounds": ROUNDS,
            "samples": SAMPLES,
            "speedup_floor": SPEEDUP_FLOOR,
            "series": series,
        },
    )
    if any("FAIL" in c for c in claims):
        raise SystemExit(f"scored claim failed: {claims}")


if __name__ == "__main__":
    main()
