#!/usr/bin/env python3
"""Aggregate every ``results/BENCH_*.json`` into one trajectory file.

Each bench emits a machine-readable ``BENCH_<name>.json`` payload (see
``benchmarks/_util.write_bench_json``). This script folds them into
``results/BENCH_trajectory.json`` so CI can upload one artifact and
successive runs can be diffed as a perf trajectory.

Run:  python benchmarks/aggregate_trajectory.py
"""
from __future__ import annotations

import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
OUTPUT = RESULTS_DIR / "BENCH_trajectory.json"
FORMAT = "repro-bench-trajectory/1"


def aggregate() -> dict:
    """Fold the payloads, deterministically.

    Files are visited in sorted name order and the result maps bench
    *name* -> payload, so re-runs of the same bench dumped under a
    different file name (``BENCH_foo (1).json``, editor backups, ...)
    would otherwise clobber each other in glob order. Dedupe rule: the
    canonical file ``BENCH_<name>.json`` always wins; any other file
    claiming an already-seen bench name is recorded in ``skipped``
    instead of silently overwriting.
    """
    benches = {}
    source_of = {}
    skipped = []
    for path in sorted(RESULTS_DIR.glob("BENCH_*.json")):
        if path.name == OUTPUT.name:
            continue
        try:
            payload = json.loads(path.read_text())
        except ValueError as exc:
            skipped.append(f"{path.name}: {exc}")
            continue
        name = payload.get("bench", path.stem[len("BENCH_"):])
        canonical = path.stem == f"BENCH_{name}"
        if name in benches:
            if canonical:
                skipped.append(
                    f"{source_of[name]}: duplicate of bench '{name}' "
                    f"(superseded by {path.name})"
                )
            else:
                skipped.append(
                    f"{path.name}: duplicate of bench '{name}' "
                    f"(kept {source_of[name]})"
                )
                continue
        benches[name] = payload
        source_of[name] = path.name
    return {
        "format": FORMAT,
        "count": len(benches),
        "benches": {name: benches[name] for name in sorted(benches)},
        "skipped": sorted(skipped),
    }


def main() -> int:
    if not RESULTS_DIR.is_dir():
        print(f"no results directory at {RESULTS_DIR}", file=sys.stderr)
        return 2
    doc = aggregate()
    if not doc["benches"]:
        print("no BENCH_*.json payloads found", file=sys.stderr)
        return 2
    OUTPUT.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )
    print(
        f"aggregated {doc['count']} bench payload(s) -> {OUTPUT.name}"
    )
    for line in doc["skipped"]:
        print(f"  skipped {line}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
