"""Figure 11: detection time for the 126.lammps potential deadlock.

The lammps proxy's send-send cycle yields a sparse wait-for graph (one
arc per process), so — as the paper reports — total detection time is
far below the wildcard case at equal scale and the output-generation
share is small (the deadlock is expressible as a short cycle).
"""
import pytest

from repro.core.detector import DistributedDeadlockDetector
from repro.mpi.blocking import BlockingSemantics
from repro.obs import make_observer
from repro.obs.stats import PHASE_PREFIX
from repro.runtime import run_programs
from repro.workloads import build_wildcard_trace, lammps_skeleton_programs

from _util import fmt_table, scale_points, write_result

PROCESS_COUNTS = scale_points(
    default=(16, 64, 128, 256),
    full=(16, 64, 128, 256, 512),
)

_collected = {}


@pytest.mark.parametrize("p", PROCESS_COUNTS)
def test_fig11_lammps_detection(benchmark, p):
    res = run_programs(
        lammps_skeleton_programs(p, healthy_iterations=2),
        semantics=BlockingSemantics.relaxed(),
        seed=1,
    )
    assert not res.deadlocked  # buffering masks it in the run

    observer = make_observer()

    def detect():
        detector = DistributedDeadlockDetector(
            res.matched, fan_in=4, seed=0, observer=observer
        )
        return detector.run()

    out = benchmark.pedantic(detect, rounds=1, iterations=1)
    record = out.detection
    assert record.has_deadlock
    assert len(record.result.deadlocked) == p
    snapshot = observer.metrics.snapshot()
    _collected[p] = {
        name[len(PHASE_PREFIX):]: summary["sum"]
        for name, summary in snapshot["histograms"].items()
        if name.startswith(PHASE_PREFIX)
    }

    if p == PROCESS_COUNTS[-1]:
        _emit(p)


def _emit(largest: int):
    phases = [
        "synchronization",
        "wfg_gather",
        "graph_build",
        "deadlock_check",
        "output_generation",
    ]
    rows = []
    for p, breakdown in sorted(_collected.items()):
        total = sum(breakdown.values())
        rows.append(
            [p, f"{total:.4f}"]
            + [
                f"{100.0 * breakdown.get(ph, 0.0) / total:.1f}%"
                for ph in phases
            ]
        )
    write_result(
        "fig11_lammps_detection",
        fmt_table(["procs", "total_s"] + phases, rows),
        data={
            "params": {"fan_in": 4, "procs": sorted(_collected)},
            "phase_breakdown_s": {
                str(p): bd for p, bd in sorted(_collected.items())
            },
        },
    )

    # Cross-figure claim: lammps detection is much cheaper than the
    # wildcard case at the same scale (sparse vs p^2-arc graph).
    from repro.core.detector import DistributedDeadlockDetector

    wc = DistributedDeadlockDetector(
        build_wildcard_trace(largest), fan_in=4, seed=0
    ).run()
    wc_total = sum(wc.detection.timers.breakdown().values())
    lam_total = sum(_collected[largest].values())
    write_result(
        "fig11_vs_fig10",
        [
            f"p={largest}: lammps detection {lam_total:.4f}s vs "
            f"wildcard {wc_total:.4f}s "
            f"(ratio {wc_total / max(lam_total, 1e-9):.1f}x)",
        ],
    )
    assert lam_total < wc_total
    # Output share small for the 2-arc-per-process cycle graph.
    breakdown = _collected[largest]
    assert breakdown["output_generation"] / lam_total < 0.5
