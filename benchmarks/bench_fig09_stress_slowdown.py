"""Figure 9: stress-test slowdown, distributed vs centralized.

Regenerates the full figure from the calibrated cost model (the
measured quantity on Sierra was wall-clock slowdown, which the model
reproduces in shape: constant-or-decreasing distributed series per
fan-in, diverging centralized baseline with its ~8,000x projection at
4,096 processes) and validates the model's protocol-level inputs by
running the real distributed tool end to end on the same workload at a
small scale, counting actual per-iteration tool events.
"""
import math

import pytest

from repro.core.detector import DistributedDeadlockDetector
from repro.perf import stress_sweep
from repro.perf.slowdown import StressTestConfig
from repro.workloads import build_stress_trace

from _util import fmt_table, scale_points, write_result

PROCESS_COUNTS = scale_points(
    default=(16, 32, 64, 128, 256, 512, 1024, 2048, 4096),
    full=(16, 32, 64, 128, 256, 512, 1024, 2048, 4096),
)


def test_fig09_series(benchmark):
    data = benchmark(stress_sweep, PROCESS_COUNTS)
    header = ["procs"] + [k for k in data if k != "p"]
    rows = []
    for i, p in enumerate(PROCESS_COUNTS):
        row = [p]
        for key in header[1:]:
            v = data[key][i]
            row.append("-" if math.isnan(v) else f"{v:.1f}")
        rows.append(row)
    write_result(
        "fig09_stress_slowdown",
        fmt_table(header, rows),
        data={
            "params": {"procs": list(PROCESS_COUNTS)},
            "series": {
                k: [None if math.isnan(v) else v for v in series]
                for k, series in data.items()
                if k != "p"
            },
        },
    )

    # Shape assertions: the paper's qualitative claims.
    d2 = data["distributed_fanin_2"]
    assert all(a >= b for a, b in zip(d2, d2[1:])), "fan-in 2 not flat"
    cp = data["centralized_projected"]
    assert cp[-1] > 50 * d2[-1], "centralized must diverge"


def test_fig09_event_counts_validate_model(benchmark):
    """The model assumes ~5 tool events per rank-iteration for p2p; the
    real distributed tool must produce that count."""
    p, iterations = 8, 40
    matched = build_stress_trace(p, iterations=iterations)

    def run():
        detector = DistributedDeadlockDetector(matched, fan_in=4, seed=0)
        return detector.run()

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    totals = {}
    for stats in out.node_stats.values():
        for key, value in stats.items():
            totals[key] = totals.get(key, 0) + value
    p2p_events = (
        totals.get("NewOpMsg", 0)
        + totals.get("PassSend", 0)
        + totals.get("RecvActive", 0)
        + totals.get("RecvActiveAck", 0)
    )
    per_rank_iter = p2p_events / (p * iterations)
    cfg = StressTestConfig()
    write_result(
        "fig09_event_validation",
        [
            f"tool events per rank-iteration (measured): {per_rank_iter:.2f}",
            f"model constant: {cfg.P2P_EVENTS_PER_ITER + 1:.2f} "
            "(incl. the Wait newOp)",
        ],
        data={
            "params": {"procs": p, "iterations": iterations, "fan_in": 4},
            "events_per_rank_iteration": per_rank_iter,
            "model_constant": cfg.P2P_EVENTS_PER_ITER + 1,
            "message_counts": totals,
        },
    )
    # NewOp(isend)+NewOp(recv)+NewOp(wait)+PassSend+RecvActive+Ack = 6
    assert 5.5 <= per_rank_iter <= 6.8


def test_fig09_replay_validates_model(benchmark):
    """Independent check: the timed trace replay (dependency DAG +
    FIFO tool servers) must reproduce the model's orderings and agree
    within a factor of two at small scale."""
    from repro.perf.replay import replay_slowdown
    from repro.perf import (
        stress_centralized_slowdown,
        stress_distributed_slowdown,
    )

    def run():
        out = {}
        for p in (16, 32, 64):
            matched = build_stress_trace(p, iterations=30)
            out[p] = {
                "replay_f2": replay_slowdown(matched, fan_in=2),
                "replay_f4": replay_slowdown(matched, fan_in=4),
                "replay_central": replay_slowdown(
                    matched, fan_in=2, centralized=True
                ),
                "model_f2": stress_distributed_slowdown(p, 2),
                "model_central": stress_centralized_slowdown(p),
            }
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            p,
            f"{v['replay_f2']:.0f}",
            f"{v['model_f2']:.0f}",
            f"{v['replay_f4']:.0f}",
            f"{v['replay_central']:.0f}",
            f"{v['model_central']:.0f}",
        ]
        for p, v in sorted(data.items())
    ]
    write_result(
        "fig09_replay_validation",
        fmt_table(
            ["procs", "replay_f2", "model_f2", "replay_f4",
             "replay_central", "model_central"],
            rows,
        ),
        data={
            "params": {"procs": sorted(data), "iterations": 30},
            "series": {str(p): v for p, v in sorted(data.items())},
        },
    )
    for p, v in data.items():
        assert 0.5 <= v["replay_f2"] / v["model_f2"] <= 2.0
        assert v["replay_f2"] < v["replay_f4"]
        assert 0.5 <= v["replay_central"] / v["model_central"] <= 2.0
