"""Partial-order-reduction strength of the match-set explorer.

The wildcard verifier's POR prunes interleavings whose reordering is
provably irrelevant to deadlock reachability. On workloads made of
independent communication chains the naive search multiplies their
interleavings while the reduced search walks (close to) a single
chain — the reduction that makes `repro verify` usable beyond toy
scales.

Two cells, both measured on state counts (fully deterministic — no
timers involved, so no noise methodology is needed):

* **ping-pong pairs** (6 ranks, 3 rounds): independent directed pairs,
  the reduction's best case and the trajectory's scored claim;
* **wildcard stress** (4 ranks, 2 rounds): wildcard receives force the
  explorer to keep real branching, so this cell documents the honest,
  smaller win on the hard fragment.

Scored claim: naive/POR states ratio >= 5x on the ping-pong cell
(measured well above that; the floor leaves room for explorer-ordering
tweaks without masking a real regression).
"""
from repro.analysis import explore_extraction, extract_programs
from repro.workloads import (
    ping_pong_pairs_programs,
    wildcard_stress_programs,
)

from _util import fmt_table, write_result

#: Scored reduction floor on the ping-pong cell.
REDUCTION_FLOOR = 5.0
#: State bound for the naive searches (both converge far below it).
MAX_STATES = 300_000


def _cell(name, programs):
    ext = extract_programs(list(programs))
    naive = explore_extraction(ext, por=False, max_states=MAX_STATES)
    reduced = explore_extraction(ext, por=True, max_states=MAX_STATES)
    assert naive.verdict == reduced.verdict, (
        f"{name}: POR changed the verdict "
        f"({naive.verdict} -> {reduced.verdict})"
    )
    ratio = naive.stats.states_explored / max(
        1, reduced.stats.states_explored
    )
    return {
        "verdict": str(naive.verdict),
        "naive_states": naive.stats.states_explored,
        "por_states": reduced.stats.states_explored,
        "ratio": ratio,
    }


def main() -> int:
    cells = {
        "ping_pong_pairs": _cell(
            "ping_pong_pairs", ping_pong_pairs_programs(6, rounds=3)
        ),
        "wildcard_stress": _cell(
            "wildcard_stress", wildcard_stress_programs(4, rounds=2)
        ),
    }
    rows = [
        [name, c["verdict"], f"{c['naive_states']:,}",
         f"{c['por_states']:,}", f"{c['ratio']:.1f}x"]
        for name, c in cells.items()
    ]
    lines = fmt_table(
        ["workload", "verdict", "naive states", "POR states", "ratio"],
        rows,
    )
    claim = cells["ping_pong_pairs"]["ratio"]
    lines.append("")
    lines.append(
        f"POR state reduction (ping-pong pairs): {claim:.1f}x "
        f"(floor: {REDUCTION_FLOOR}x)"
    )
    write_result(
        "por_reduction",
        lines,
        data={
            "max_states": MAX_STATES,
            "reduction_floor": REDUCTION_FLOOR,
            "claim": {
                "workload": "ping_pong_pairs",
                "ratio": claim,
            },
            "cells": cells,
        },
    )
    if claim < REDUCTION_FLOOR:
        print(
            f"FAIL: POR reduction {claim:.1f}x below the "
            f"{REDUCTION_FLOOR}x floor"
        )
        return 1
    print(f"PASS: POR reduction {claim:.1f}x >= {REDUCTION_FLOOR}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
