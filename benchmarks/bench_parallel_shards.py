"""Shard-scaling of the parallel analysis backend.

The sharded backend's claim: the first tool layer — p2p matching and
wait-state tracking, the bulk of the analysis at scale — parallelizes
across worker processes while the root/WFG stays centralized, so
detection latency approaches ``coordinator + first_layer / shards``.

This bench records one stress trace per process count and replays it
through ``ShardedBackend`` at 1, 2, 4, and 8 shards. Two series per
cell:

* **wall** — observed wall-clock of the run. On a machine with fewer
  free cores than shards (CI containers often pin one), workers are
  time-sliced and wall degrades toward the busy-time *sum*; it is
  reported for honesty, not scored.
* **modeled** — the per-core critical path the backend derives from
  its own busy-time accounting (``coordinator_busy + max(shard
  busy)``, see ``ShardedBackend.last_timing``): the detection latency
  on a machine with at least ``shards + 1`` free cores, measured —
  not simulated — from the actual per-process work done.

Scored claim: >= 1.8x modeled speedup at 4 shards, 256 processes,
against the same backend at 1 shard.
"""
import gc
import time

from repro.backend.sharded import ShardedBackend
from repro.mpi.blocking import BlockingSemantics
from repro.runtime import run_programs
from repro.workloads import stress_programs

from _util import fmt_table, scale_points, write_result

PROCESS_COUNTS = scale_points(default=(64, 128, 256), full=(64, 128, 256, 1024))
SHARD_COUNTS = (1, 2, 4, 8)
SAMPLES = 3
#: Scored speedup floor: modeled latency, 4 shards vs 1, largest
#: default scale (p=256).
SPEEDUP_FLOOR = 1.8
_CLAIM_P = 256
_CLAIM_SHARDS = 4


def _record(p):
    res = run_programs(
        stress_programs(p, iterations=20),
        semantics=BlockingSemantics.relaxed(),
        seed=1,
    )
    return res.matched


def _measure(matched, shards):
    """Best-of-N modeled latency (and its wall clock) for one cell.

    Noise only adds time, so the minimum modeled sample is the
    cleanest estimate of the true critical path.
    """
    best = None
    gc.disable()
    try:
        for _ in range(SAMPLES):
            backend = ShardedBackend(shards=shards)
            t0 = time.perf_counter()
            outcome = backend.run(matched, generate_outputs=False)
            wall = time.perf_counter() - t0
            assert not outcome.has_deadlock
            timing = dict(backend.last_timing)
            timing["wall_seconds"] = wall
            if best is None or (
                timing["modeled_latency_seconds"]
                < best["modeled_latency_seconds"]
            ):
                best = timing
    finally:
        gc.enable()
    return best


def main() -> int:
    rows = []
    cells = {}
    for p in PROCESS_COUNTS:
        matched = _record(p)
        base = None
        for shards in SHARD_COUNTS:
            timing = _measure(matched, shards)
            if shards == 1:
                base = timing["modeled_latency_seconds"]
            speedup = base / timing["modeled_latency_seconds"]
            cells[(p, shards)] = {**timing, "modeled_speedup": speedup}
            rows.append(
                (
                    p,
                    timing["shards"],
                    timing["rounds"],
                    timing["cross_shard_messages"],
                    f"{timing['wall_seconds'] * 1e3:.1f}",
                    f"{timing['modeled_latency_seconds'] * 1e3:.1f}",
                    f"{speedup:.2f}x",
                )
            )

    lines = fmt_table(
        ("procs", "shards", "rounds", "x-shard msgs", "wall ms",
         "modeled ms", "speedup"),
        rows,
    )
    claim = cells[(_CLAIM_P, _CLAIM_SHARDS)]["modeled_speedup"]
    lines.append("")
    lines.append(
        f"modeled speedup at {_CLAIM_SHARDS} shards, p={_CLAIM_P}: "
        f"{claim:.2f}x (floor: {SPEEDUP_FLOOR}x)"
    )
    write_result(
        "parallel_shards",
        lines,
        data={
            "workload": "stress",
            "iterations": 20,
            "samples": SAMPLES,
            "shard_counts": list(SHARD_COUNTS),
            "process_counts": list(PROCESS_COUNTS),
            "speedup_floor": SPEEDUP_FLOOR,
            "claim": {
                "p": _CLAIM_P,
                "shards": _CLAIM_SHARDS,
                "modeled_speedup": claim,
            },
            "cells": {
                f"p{p}_s{s}": cell for (p, s), cell in cells.items()
            },
        },
    )
    if claim < SPEEDUP_FLOOR:
        print(
            f"FAIL: modeled speedup {claim:.2f}x below the "
            f"{SPEEDUP_FLOOR}x floor"
        )
        return 1
    print(f"PASS: modeled speedup {claim:.2f}x >= {SPEEDUP_FLOOR}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
