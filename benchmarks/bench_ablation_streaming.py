"""Ablation: streamed/aggregated vs immediate tool communication.

Section 4.2: matching traffic can stream through aggregated buffers,
but the wait-state messages cannot — TBON nodes must wait for them
before continuing, so they pay full per-message cost, "which impacts
performance". The ablation compares three hypothetical designs in the
model: everything streamed (a lower bound the paper says is
unreachable for wait state), the paper's mixed design, and everything
immediate (a naive implementation).
"""
import dataclasses

import pytest

from repro.perf import SIERRA, stress_distributed_slowdown

from _util import fmt_table, write_result

PROCESS_COUNTS = (16, 256, 4096)


def _variant(streaming_factor: float, immediate_msg_cost: float):
    return dataclasses.replace(
        SIERRA,
        streaming_factor=streaming_factor,
        immediate_msg_cost=immediate_msg_cost,
    )


def test_streaming_ablation(benchmark):
    paper = SIERRA
    all_streamed = _variant(
        SIERRA.streaming_factor,
        SIERRA.immediate_msg_cost * SIERRA.streaming_factor,
    )
    all_immediate = _variant(1.0, SIERRA.immediate_msg_cost)

    def sweep():
        return {
            "all_streamed(lower_bound)": [
                stress_distributed_slowdown(p, 2, model=all_streamed)
                for p in PROCESS_COUNTS
            ],
            "paper_mixed": [
                stress_distributed_slowdown(p, 2, model=paper)
                for p in PROCESS_COUNTS
            ],
            "all_immediate": [
                stress_distributed_slowdown(p, 2, model=all_immediate)
                for p in PROCESS_COUNTS
            ],
        }

    data = benchmark(sweep)
    rows = [
        [name] + [f"{v:.1f}x" for v in series]
        for name, series in data.items()
    ]
    write_result(
        "ablation_streaming",
        fmt_table(["design"] + [f"p={p}" for p in PROCESS_COUNTS], rows),
        data={
            "params": {"procs": list(PROCESS_COUNTS), "fan_in": 2},
            "series": {name: list(series) for name, series in data.items()},
        },
    )
    for i in range(len(PROCESS_COUNTS)):
        assert (
            data["all_streamed(lower_bound)"][i]
            <= data["paper_mixed"][i]
            <= data["all_immediate"][i]
        )
