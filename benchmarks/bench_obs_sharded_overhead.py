"""Cross-shard distributed-tracing overhead on the sharded backend.

PR 7's distributed tracing threads a trace context through the wire
codec, runs the BSP round profiler inside every worker, streams
batched ``("obs", ...)`` frames over ``res_q``, and merges the shards'
clocks at the coordinator. That machinery must hold the observability
layer's <5% bound *on top of what an observed worker already costs*:
per-message counters, wait-state spans, and delivery instants have
been opt-in worker costs since PR 5 (and are priced the same on the
inline backend), so the scored pairing holds them constant and
isolates the new distributed layer:

* **base** — observability on, ``distributed_tracing=False``: workers
  record locally exactly as in PR 5 (metrics merge at join, trace
  events stay dark), no context on the wire, no profiler, no frames;
* **dist** — observability on, full distributed tracing.

An **off** series (``NULL_OBSERVER``) is reported for context — it
prices the whole opt-in observability layer, which has never claimed
parity — but is not scored.

Scored on **modeled latency** (``coordinator_busy + max(shard busy)``
from the backend's process-time accounting — the per-core critical
path, robust to CI machines with fewer free cores than shards) at the
tentpole's claim scale: p=256 processes, s=8 shards.

Methodology: CI containers drift (thermal state, noisy neighbors) by
far more than the effect under test — back-to-back runs of the same
variant on the dev container differ by 30%, and the drift has both a
fast jitter component and a slow minutes-scale trend. Two estimators
survive that, and they fail in opposite directions:

* **median of paired ratios** — each round runs base and dist
  *adjacently* (order alternating to cancel first-runner bias) and
  yields one ratio; the median over rounds inherits the drift-immunity
  of adjacency.  Residual weakness: a load episode inflates whichever
  variant it lands on, and with per-pair IQRs near 15% the median of
  ~20 pairs still wobbles by a few percent.
* **min/min (quiet floor)** — CPU-time noise is strictly additive, so
  each variant's minimum over the interleaved session is its cleanest
  algorithmic cost; real overhead cannot be dodged by the minimum.
  Residual weakness: the two minima may come from different windows of
  a drifting session.

A *real* regression (the distributed layer getting structurally more
expensive) moves both estimators; noise moves one or the other. The
scored statistic is therefore the smaller of the two — the bound
fails only when both drift-robust estimates agree the parity claim is
gone.  The garbage collector is parked throughout.
"""
import gc
import statistics

from repro.backend.sharded import ShardedBackend
from repro.mpi.blocking import BlockingSemantics
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.runtime import run_programs
from repro.workloads import stress_programs

from _util import fmt_table, write_result

#: The tentpole's claim scale: 256 processes across 8 shard workers.
CLAIM_PROCS = 256
CLAIM_SHARDS = 8
#: Paired base/dist rounds (each round is one adjacent pair).
ROUNDS = 20
#: Unscored NULL_OBSERVER context runs.
OFF_RUNS = 3
#: The observability parity bound (fractional) the distributed layer
#: must hold over an observed-but-dark run.
PARITY_BOUND = 0.05

VARIANTS = {
    "off": lambda: (False, NULL_OBSERVER),
    "base": lambda: (False, Observer()),
    "dist": lambda: (True, Observer()),
}


def _record(p):
    res = run_programs(
        stress_programs(p, iterations=20),
        semantics=BlockingSemantics.relaxed(),
        seed=1,
    )
    return res.matched


def _run_once(matched, variant):
    tracing, observer = VARIANTS[variant]()
    backend = ShardedBackend(
        shards=CLAIM_SHARDS, distributed_tracing=tracing
    )
    outcome = backend.run(
        matched, generate_outputs=False, observer=observer
    )
    assert not outcome.has_deadlock
    return backend.last_timing["modeled_latency_seconds"]


def main() -> int:
    matched = _record(CLAIM_PROCS)
    samples = {name: [] for name in VARIANTS}
    ratios = []
    _run_once(matched, "dist")  # warm worker spawn paths off the clock
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(OFF_RUNS):
            samples["off"].append(_run_once(matched, "off"))
        for i in range(ROUNDS):
            order = ["base", "dist"] if i % 2 == 0 else ["dist", "base"]
            round_vals = {}
            for name in order:
                round_vals[name] = _run_once(matched, name)
                samples[name].append(round_vals[name])
            ratios.append(round_vals["dist"] / round_vals["base"])
    finally:
        if gc_was_enabled:
            gc.enable()
    medians = {
        name: statistics.median(samples[name]) for name in VARIANTS
    }
    ratio_pairs = statistics.median(ratios)
    ratio_floor = min(samples["dist"]) / min(samples["base"])
    ratio = min(ratio_pairs, ratio_floor)
    lines = fmt_table(
        ["variant", "median modeled ms", "min modeled ms"],
        [
            [
                name,
                f"{medians[name] * 1e3:.3f}",
                f"{min(samples[name]) * 1e3:.3f}",
            ]
            for name in VARIANTS
        ],
    )
    lines.append("")
    lines.append(
        f"distributed-tracing overhead at p={CLAIM_PROCS}, "
        f"s={CLAIM_SHARDS}: {ratio:.3f}x "
        f"(paired-median {ratio_pairs:.3f}x over {ROUNDS} adjacent "
        f"pairs, quiet-floor {ratio_floor:.3f}x; bound: "
        f"{1.0 + PARITY_BOUND:.2f}x on modeled latency)"
    )
    write_result(
        "obs_sharded_overhead",
        lines,
        data={
            "workload": "stress",
            "iterations": 20,
            "rounds": ROUNDS,
            "parity_bound": PARITY_BOUND,
            "median_modeled_s": medians,
            "paired_ratios": ratios,
            "ratio_pairs": ratio_pairs,
            "ratio_floor": ratio_floor,
            "claim": {
                "p": CLAIM_PROCS,
                "shards": CLAIM_SHARDS,
                "base_s": medians["base"],
                "dist_s": medians["dist"],
                "ratio": ratio,
            },
        },
    )
    if ratio >= 1.0 + PARITY_BOUND:
        print(
            f"FAIL: distributed-tracing overhead {ratio:.3f}x exceeds "
            f"the {PARITY_BOUND:.0%} parity bound"
        )
        return 1
    print(f"PASS: distributed-tracing overhead {ratio:.3f}x < "
          f"{1.0 + PARITY_BOUND:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
