"""Figure 10: graph-detection time for the wildcard deadlock case.

Every process posts a wildcard receive with no sends: the wait-for
graph has p*(p-1) arcs. The bench runs the full distributed tool
(consistent-state protocol, WFG gather, build, check, DOT/HTML output)
per scale and reports (a) total detection time and (b) the breakdown
into the paper's five activity groups — the reproduced claims being
that total time grows roughly quadratically and that output generation
dominates (~75% in the paper) at scale while synchronization stays
negligible.

Synchronization and WFG-gather phases are simulated-network times;
graph build / deadlock check / output generation are real measured
computation at the root.
"""
import pytest

from repro.core.detector import DistributedDeadlockDetector
from repro.obs import make_observer
from repro.obs.stats import PHASE_PREFIX
from repro.workloads import build_wildcard_trace

from _util import fmt_table, scale_points, write_result

PROCESS_COUNTS = scale_points(
    default=(64, 128, 256, 512, 1024),
    full=(64, 128, 256, 512, 1024, 2048, 4096),
)

_collected = {}


@pytest.mark.parametrize("p", PROCESS_COUNTS)
def test_fig10_detection_time(benchmark, p):
    matched = build_wildcard_trace(p)
    observer = make_observer()

    def detect():
        detector = DistributedDeadlockDetector(
            matched, fan_in=4, seed=0, observer=observer
        )
        return detector.run()

    out = benchmark.pedantic(detect, rounds=1, iterations=1)
    record = out.detection
    assert record.has_deadlock
    assert record.graph.arc_count() == p * (p - 1)
    # The phase breakdown now comes from the obs metrics registry (the
    # generalization of PhaseTimers) rather than the record's timers.
    snapshot = observer.metrics.snapshot()
    _collected[p] = {
        name[len(PHASE_PREFIX):]: summary["sum"]
        for name, summary in snapshot["histograms"].items()
        if name.startswith(PHASE_PREFIX)
    }

    if p == PROCESS_COUNTS[-1]:
        _emit()


def _emit():
    phases = [
        "synchronization",
        "wfg_gather",
        "graph_build",
        "deadlock_check",
        "output_generation",
    ]
    rows_total = []
    rows_share = []
    for p, breakdown in sorted(_collected.items()):
        total = sum(breakdown.values())
        rows_total.append(
            [p, f"{total:.3f}"]
            + [f"{breakdown.get(ph, 0.0):.4f}" for ph in phases]
        )
        rows_share.append(
            [p]
            + [
                f"{100.0 * breakdown.get(ph, 0.0) / total:.1f}%"
                for ph in phases
            ]
        )
    write_result(
        "fig10a_wildcard_total",
        fmt_table(["procs", "total_s"] + phases, rows_total),
        data={
            "params": {"fan_in": 4, "procs": sorted(_collected)},
            "phase_breakdown_s": {
                str(p): bd for p, bd in sorted(_collected.items())
            },
        },
    )
    write_result(
        "fig10b_wildcard_breakdown",
        fmt_table(["procs"] + phases, rows_share),
        data={
            "params": {"fan_in": 4, "procs": sorted(_collected)},
            "phases": phases,
            "shares_pct": {
                str(p): {
                    ph: 100.0 * bd.get(ph, 0.0) / sum(bd.values())
                    for ph in phases
                }
                for p, bd in sorted(_collected.items())
            },
        },
    )
    # Shape checks at the largest default scale.
    biggest = _collected[max(_collected)]
    total = sum(biggest.values())
    assert biggest["output_generation"] / total > 0.35, (
        "output generation must dominate at scale"
    )
    assert biggest["synchronization"] / total < 0.05, (
        "synchronization must be negligible"
    )
    smallest_total = sum(_collected[min(_collected)].values())
    assert total > smallest_total, "detection time must grow with p"
