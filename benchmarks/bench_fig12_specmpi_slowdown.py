"""Figure 12: SPEC MPI2007 slowdowns with distributed wait state tracking.

Regenerates the per-application slowdown bars at 128..2,048 processes
(fan-in 4, as the paper selects from the stress-test study) from the
calibrated overhead model, asserts the paper's headline claims, and
runs the two structurally special applications end to end:

* 126.lammps — the proxy completes under buffering, and the tool
  reports the potential send-send deadlock (the paper's abort case);
* 128.GAPgeofem — the proxy's dense call stream exceeds a bounded
  trace window, reproducing the excluded-for-memory condition.
"""
import pytest

from repro.core.detector import DistributedDeadlockDetector
from repro.mpi.blocking import BlockingSemantics
from repro.perf import spec_slowdown
from repro.runtime import run_programs
from repro.util.errors import ResourceLimitError
from repro.workloads import gapgeofem_skeleton_programs
from repro.workloads.specmpi import (
    EXCLUDED_FROM_AVERAGE,
    SPEC_PROFILES,
)

from _util import fmt_table, write_result

SCALES = (128, 256, 512, 1024, 2048)


def test_fig12_slowdown_table(benchmark):
    def sweep():
        return {
            name: [spec_slowdown(profile, p) for p in SCALES]
            for name, profile in sorted(SPEC_PROFILES.items())
        }

    data = benchmark(sweep)
    rows = []
    for name, series in data.items():
        marks = ""
        if SPEC_PROFILES[name].potential_deadlock:
            marks = " (deadlock->abort)"
        if SPEC_PROFILES[name].window_blowup:
            marks = " (excluded: memory)"
        rows.append([name + marks] + [f"{v:.2f}" for v in series])
    included = [
        data[name][-1]
        for name in data
        if name not in EXCLUDED_FROM_AVERAGE
    ]
    avg = sum(included) / len(included)
    lines = fmt_table(
        ["application"] + [f"p={p}" for p in SCALES], rows
    )
    lines.append("")
    lines.append(
        f"average at 2048 (excl. 126.lammps, 128.GAPgeofem): {avg:.2f}x "
        "(paper: 1.34x)"
    )
    write_result(
        "fig12_specmpi_slowdown",
        lines,
        data={
            "params": {"scales": list(SCALES), "fan_in": 4},
            "series": {name: list(series) for name, series in data.items()},
            "average_at_2048": avg,
            "excluded": sorted(EXCLUDED_FROM_AVERAGE),
        },
    )

    # Headline claims.
    assert 1.2 <= avg <= 1.5
    assert data["121.pop2"][-1] == max(included)
    assert data["137.lu"][-1] < 1.0
    assert data["142.dmilc"][-1] < 1.05
    # Overheads grow with scale (strong scaling raises comm intensity).
    for name, series in data.items():
        if name in EXCLUDED_FROM_AVERAGE:
            continue
        assert series[0] <= series[-1] + 1e-9


def test_fig12_gapgeofem_window_blowup(benchmark):
    programs = gapgeofem_skeleton_programs(4, iterations=120)
    res = run_programs(
        programs, semantics=BlockingSemantics.relaxed(), seed=3
    )
    assert not res.deadlocked

    def analyze_with_small_window():
        detector = DistributedDeadlockDetector(
            res.matched, fan_in=2, seed=0, window_limit=64
        )
        try:
            detector.run()
        except ResourceLimitError as exc:
            return exc
        return None

    exc = benchmark.pedantic(analyze_with_small_window, rounds=1,
                             iterations=1)
    assert isinstance(exc, ResourceLimitError)
    write_result(
        "fig12_gapgeofem",
        [
            "128.GAPgeofem proxy: trace window exceeded the configured "
            "limit, as on Sierra:",
            f"  {exc}",
        ],
        data={
            "params": {"procs": 4, "iterations": 120, "window_limit": 64},
            "window_exceeded": True,
            "error": str(exc),
        },
    )
