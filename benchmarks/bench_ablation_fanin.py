"""Ablation: fan-in sensitivity (Section 6's tuning discussion).

"High fan-ins can cause higher tool overheads, while lower fan-ins
decrease overhead at the cost of extra computing resources." The bench
quantifies both sides: modelled slowdown per fan-in, plus the measured
tool-resource cost (number of tool processes and per-node event load)
from real end-to-end runs of the distributed tool.
"""
import pytest

from repro.core.detector import DistributedDeadlockDetector
from repro.perf import stress_distributed_slowdown
from repro.tbon import TbonTopology
from repro.workloads import build_stress_trace

from _util import fmt_table, write_result

FAN_INS = (2, 4, 8, 16)
P = 64


def test_fanin_tradeoff(benchmark):
    matched = build_stress_trace(16, iterations=20)

    def run_all():
        outcomes = {}
        for fan_in in (2, 4, 8):
            detector = DistributedDeadlockDetector(
                matched, fan_in=fan_in, seed=0
            )
            outcomes[fan_in] = detector.run()
        return outcomes

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for fan_in in FAN_INS:
        topo = TbonTopology.build(P, fan_in)
        slowdown = stress_distributed_slowdown(P, fan_in)
        if fan_in in outcomes:
            out = outcomes[fan_in]
            msgs = out.messages_sent
            peak = out.peak_window
        else:
            msgs = peak = "-"
        rows.append(
            [
                fan_in,
                f"{slowdown:.0f}x",
                topo.num_tool_nodes,
                f"{P / (P + topo.num_tool_nodes):.2f}",
                msgs,
                peak,
            ]
        )
    lines = fmt_table(
        [
            "fan_in",
            "model_slowdown(p=64)",
            "tool_nodes(p=64)",
            "app_core_share",
            "tool_msgs(p=16)",
            "peak_window",
        ],
        rows,
    )
    lines.append("")
    lines.append(
        "lower fan-in: less overhead, more tool resources — the paper "
        "picks fan-in 4 for SPEC as the compromise"
    )
    write_result(
        "ablation_fanin",
        lines,
        data={
            "params": {"procs_model": P, "procs_run": 16, "fan_ins": list(FAN_INS)},
            "rows": [
                {
                    "fan_in": fan_in,
                    "model_slowdown": stress_distributed_slowdown(P, fan_in),
                    "tool_nodes": TbonTopology.build(P, fan_in).num_tool_nodes,
                    "tool_msgs": (
                        outcomes[fan_in].messages_sent
                        if fan_in in outcomes else None
                    ),
                    "peak_window": (
                        outcomes[fan_in].peak_window
                        if fan_in in outcomes else None
                    ),
                }
                for fan_in in FAN_INS
            ],
        },
    )

    # Monotone tradeoff in the model.
    slow = [stress_distributed_slowdown(P, f) for f in FAN_INS]
    assert slow == sorted(slow)
    nodes = [TbonTopology.build(P, f).num_tool_nodes for f in FAN_INS]
    assert nodes == sorted(nodes, reverse=True)
