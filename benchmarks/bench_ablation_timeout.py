"""Ablation: detection frequency (Section 5's timeout design).

MUST issues graph detection only after a configurable timeout "without
loss of precision". The ablation runs the distributed tool with
increasingly frequent mid-run detections on a deadlock-free stress
trace and measures the added protocol traffic and the (unchanged)
verdict — demonstrating why per-transition detection, as in Umpire's
implicit search, is wasteful and the timeout design sound.
"""
import pytest

from repro.core.detector import DistributedDeadlockDetector
from repro.workloads import build_stress_trace

from _util import fmt_table, write_result

P, ITERATIONS = 8, 30


def _run(num_detections: int):
    matched = build_stress_trace(P, iterations=ITERATIONS)
    detector = DistributedDeadlockDetector(
        matched, fan_in=2, seed=0, op_gap=1e-5
    )
    span = 1e-5 * ITERATIONS * 4
    times = [
        span * (i + 1) / (num_detections + 1)
        for i in range(num_detections)
    ]
    return detector.run(detect_at=times, detect_at_end=True)


def test_timeout_frequency_ablation(benchmark):
    def sweep():
        return {n: _run(n) for n in (0, 2, 8, 24)}

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    baseline = outcomes[0].messages_sent
    rows = []
    for n, out in sorted(outcomes.items()):
        assert not out.has_deadlock  # precision never changes
        rows.append(
            [
                n + 1,  # incl. the final quiescence detection
                out.messages_sent,
                f"+{100.0 * (out.messages_sent - baseline) / baseline:.1f}%",
                len(out.detections),
            ]
        )
    lines = fmt_table(
        ["detections", "tool_msgs", "overhead_vs_1", "completed"], rows
    )
    lines.append("")
    lines.append(
        "verdict identical at every frequency (timeout design is "
        "precision-free); traffic grows with detection count"
    )
    write_result(
        "ablation_timeout",
        lines,
        data={
            "params": {"procs": P, "iterations": ITERATIONS, "fan_in": 2},
            "rows": [
                {
                    "detections": n + 1,
                    "tool_msgs": out.messages_sent,
                    "completed": len(out.detections),
                }
                for n, out in sorted(outcomes.items())
            ],
        },
    )

    msgs = [out.messages_sent for _, out in sorted(outcomes.items())]
    assert msgs == sorted(msgs)
    # All runs converge to the same stable state.
    states = {out.stable_state for out in outcomes.values()}
    assert len(states) == 1
